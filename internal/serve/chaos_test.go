package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/recovery"
	"repro/internal/sim"
)

// chaosPanicSeed is the magic FaultSeed the soak's injected
// beforeExecute hook panics on.
const chaosPanicSeed = 0xdead

// chaosBaseline is the ground truth for one model: what a direct
// library run reports, clean and under the soak's deterministic
// fault plan.
type chaosBaseline struct {
	model       string
	instrs      int
	clean       sim.Stats
	faulted     sim.Stats
	faultedFail bool    // deterministic fault plan kills the run
	degraded    float64 // recovered end-to-end cycles after the hang
	corruptions int     // strata the flip plan corrupts
}

const chaosFaultSpec = "drop=0.05"
const chaosFaultSeed = 42

// The hang soak: core 1 silently stalls early, the watchdog catches it
// within two beats, and (with Recover set) the request completes
// degraded on the survivors.
const (
	chaosHangSpec = "hang=1@1000"
	chaosWatchdog = 5000
	chaosFlipSpec = "flip=0.3"
)

// TestChaosSoak hammers an in-process server with concurrent clean
// runs, fault-injected runs, client cancellations, 1ms deadlines,
// malformed bodies, injected panics, and queue pressure — then
// asserts that no panic escaped, the counters balance, every
// completed response is bit-identical to a direct engine run, and no
// goroutines leak after drain. Run it with -race.
func TestChaosSoak(t *testing.T) {
	goroutinesBefore := runtime.NumGoroutine()

	modelNames := []string{"MobileNetV2", "ResNet50", "InceptionV3", "MobileDet-SSD"}
	baselines := make(map[string]*chaosBaseline, len(modelNames))
	a := arch.Exynos2100Like()
	for _, name := range modelNames {
		g := buildModel(t, name)
		res, err := core.CompileCached(g, a, core.Stratum())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		clean, err := sim.Run(res.Program, sim.Config{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b := &chaosBaseline{model: name, instrs: res.Program.NumInstrs(), clean: clean.Stats}
		plan, err := fault.ParseSpec(chaosFaultSpec, chaosFaultSeed)
		if err != nil {
			t.Fatal(err)
		}
		if faulted, err := sim.Run(res.Program, sim.Config{Faults: plan}); err != nil {
			b.faultedFail = true
		} else {
			b.faulted = faulted.Stats
		}
		// Ground truth for the hang-and-recover path: the watchdog must
		// detect, and recovery on the survivors is deterministic.
		hangPlan, err := fault.ParseSpec(chaosHangSpec, 0)
		if err != nil {
			t.Fatal(err)
		}
		hangCfg := sim.Config{Faults: hangPlan, WatchdogCycles: chaosWatchdog}
		_, herr := sim.Run(res.Program, hangCfg)
		var hd *sim.HangDetected
		if !errors.As(herr, &hd) {
			t.Fatalf("%s: hang soak plan did not trigger detection: %v", name, herr)
		}
		rec, err := recovery.RecoverFrom(g, a, herr, recovery.Options{Opt: core.Stratum(), Sim: hangCfg})
		if err != nil {
			t.Fatalf("%s: hang recovery baseline: %v", name, err)
		}
		b.degraded = rec.TotalCycles
		// Ground truth for flip detection counts.
		flipPlan, err := fault.ParseSpec(chaosFlipSpec, chaosFaultSeed)
		if err != nil {
			t.Fatal(err)
		}
		flipped, err := sim.Run(res.Program, sim.Config{Faults: flipPlan})
		if err != nil {
			t.Fatalf("%s: flip run failed: %v", name, err)
		}
		if len(flipped.Corruptions) == 0 {
			t.Fatalf("%s: flip soak plan corrupts nothing", name)
		}
		b.corruptions = len(flipped.Corruptions)
		baselines[name] = b
	}

	s := New(Options{Concurrency: 4, Queue: 4})
	s.beforeExecute = func(req *RunRequest) {
		if req.FaultSeed == chaosPanicSeed {
			panic("chaos: injected panic")
		}
	}
	ts := httptest.NewServer(s.Handler())

	workers, iters := 8, 20
	if testing.Short() {
		workers, iters = 4, 8
	}
	var wg sync.WaitGroup
	errCh := make(chan error, workers*iters)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for i := 0; i < iters; i++ {
				if err := chaosStep(ts, rng, modelNames, baselines); err != nil {
					errCh <- fmt.Errorf("worker %d step %d: %w", w, i, err)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// The server must still be fully healthy after the storm.
	if code := getStatus(t, ts, "/healthz"); code != http.StatusOK {
		t.Errorf("/healthz after soak = %d", code)
	}
	code, rr, er := postRun(t, ts, RunRequest{Model: modelNames[0]})
	if code != http.StatusOK {
		t.Fatalf("clean request after soak: %d %+v", code, er)
	}
	if b := baselines[modelNames[0]]; rr.TotalCycles != b.clean.TotalCycles {
		t.Errorf("post-soak response drifted: %v cycles, want %v", rr.TotalCycles, b.clean.TotalCycles)
	}

	st := s.Stats()
	if st.InFlight != 0 || st.Queued != 0 {
		t.Errorf("idle server reports in-flight %d, queued %d", st.InFlight, st.Queued)
	}
	if st.Accepted != st.Completed+st.Failed+st.Canceled {
		t.Errorf("counters do not balance: %+v", st)
	}
	if st.Panics == 0 {
		t.Error("soak injected panics but none were recorded")
	}

	// Drain and verify nothing leaked. ts.Close tears down the client
	// pool and per-connection goroutines; give the runtime a moment.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Errorf("Shutdown: %v", err)
	}
	ts.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > goroutinesBefore+2 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d before, %d after drain\n%s",
				goroutinesBefore, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
}

// chaosStep fires one randomized request and checks its outcome.
// Under queue pressure any request may legitimately shed with 429, so
// every case accepts that alongside its specific expectation.
func chaosStep(ts *httptest.Server, rng *rand.Rand, names []string, baselines map[string]*chaosBaseline) error {
	model := names[rng.Intn(len(names))]
	switch rng.Intn(9) {
	case 0: // clean run: bit-identical to the direct engine run
		code, rr, er := doRun(ts, nil, RunRequest{Model: model})
		switch code {
		case http.StatusOK:
			b := baselines[model]
			if rr.TotalCycles != b.clean.TotalCycles || rr.Barriers != b.clean.Barriers || rr.Instrs != b.instrs {
				return fmt.Errorf("%s served (%v cycles, %d barriers, %d instrs), direct run says (%v, %d, %d)",
					model, rr.TotalCycles, rr.Barriers, rr.Instrs, b.clean.TotalCycles, b.clean.Barriers, b.instrs)
			}
		case http.StatusTooManyRequests:
		default:
			return fmt.Errorf("clean %s: status %d %+v", model, code, er)
		}
	case 1: // deterministic fault plan: also bit-identical
		code, rr, er := doRun(ts, nil, RunRequest{Model: model, Faults: chaosFaultSpec, FaultSeed: chaosFaultSeed})
		b := baselines[model]
		switch code {
		case http.StatusOK:
			if b.faultedFail {
				return fmt.Errorf("faulted %s served, but the direct faulted run fails", model)
			}
			if rr.TotalCycles != b.faulted.TotalCycles {
				return fmt.Errorf("faulted %s served %v cycles, direct run says %v", model, rr.TotalCycles, b.faulted.TotalCycles)
			}
		case http.StatusUnprocessableEntity:
			if !b.faultedFail {
				return fmt.Errorf("faulted %s got 422 %+v, but the direct faulted run succeeds", model, er)
			}
		case http.StatusTooManyRequests:
		default:
			return fmt.Errorf("faulted %s: status %d %+v", model, code, er)
		}
	case 2: // killed core: typed 422
		code, _, er := doRun(ts, nil, RunRequest{Model: model, Faults: "kill=1@1000"})
		switch code {
		case http.StatusUnprocessableEntity:
			if er.Kind != "core_failure" {
				return fmt.Errorf("kill fault: kind %q, want core_failure", er.Kind)
			}
		case http.StatusTooManyRequests:
		default:
			return fmt.Errorf("kill fault: status %d %+v", code, er)
		}
	case 3: // client cancels mid-flight; any of the cancel shapes is fine
		ctx, cancel := context.WithCancel(context.Background())
		time.AfterFunc(time.Duration(rng.Intn(3))*time.Millisecond, cancel)
		code, _, _ := doRun(ts, ctx, RunRequest{Model: model})
		cancel()
		switch code {
		case 0, http.StatusOK, StatusClientClosedRequest, http.StatusGatewayTimeout, http.StatusTooManyRequests:
		default:
			return fmt.Errorf("canceled request: unexpected status %d", code)
		}
	case 4: // 1ms deadline: deadline, shed, or (cache-warm) success
		code, _, _ := doRun(ts, nil, RunRequest{Model: model, TimeoutMS: 1})
		switch code {
		case http.StatusOK, http.StatusGatewayTimeout, http.StatusTooManyRequests, StatusClientClosedRequest:
		default:
			return fmt.Errorf("1ms deadline: unexpected status %d", code)
		}
	case 5: // malformed body or injected panic
		if rng.Intn(2) == 0 {
			resp, err := ts.Client().Post(ts.URL+"/run", "application/json",
				strings.NewReader(`{"Model": truncated`))
			if err != nil {
				return err
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusTooManyRequests {
				return fmt.Errorf("malformed body: status %d", resp.StatusCode)
			}
		} else {
			code, _, er := doRun(ts, nil, RunRequest{Model: model, FaultSeed: chaosPanicSeed})
			switch code {
			case http.StatusInternalServerError:
				if er.Kind != "panic" {
					return fmt.Errorf("injected panic: kind %q", er.Kind)
				}
			case http.StatusTooManyRequests:
			default:
				return fmt.Errorf("injected panic: status %d %+v", code, er)
			}
		}
	case 6: // silent hang, watchdog armed, no recovery: typed 422
		code, _, er := doRun(ts, nil, RunRequest{
			Model: model, Faults: chaosHangSpec, WatchdogCycles: chaosWatchdog,
		})
		switch code {
		case http.StatusUnprocessableEntity:
			if er.Kind != "hang_detected" {
				return fmt.Errorf("hang fault: kind %q, want hang_detected", er.Kind)
			}
		case http.StatusTooManyRequests:
		default:
			return fmt.Errorf("hang fault: status %d %+v", code, er)
		}
	case 7: // silent hang with recovery: degraded 200, bit-identical
		code, rr, er := doRun(ts, nil, RunRequest{
			Model: model, Faults: chaosHangSpec, WatchdogCycles: chaosWatchdog, Recover: true,
		})
		switch code {
		case http.StatusOK:
			if !rr.Degraded {
				return fmt.Errorf("recovered hang on %s not marked degraded", model)
			}
			if len(rr.DeadCores) != 1 || rr.DeadCores[0] != 1 {
				return fmt.Errorf("recovered hang on %s retired cores %v, want [1]", model, rr.DeadCores)
			}
			if b := baselines[model]; rr.TotalCycles != b.degraded {
				return fmt.Errorf("recovered hang on %s served %v cycles, direct recovery says %v",
					model, rr.TotalCycles, b.degraded)
			}
		case http.StatusTooManyRequests:
		default:
			return fmt.Errorf("recovered hang: status %d %+v", code, er)
		}
	case 8: // bit flips: run completes, corruption count bit-identical
		code, rr, er := doRun(ts, nil, RunRequest{
			Model: model, Faults: chaosFlipSpec, FaultSeed: chaosFaultSeed,
		})
		switch code {
		case http.StatusOK:
			b := baselines[model]
			if rr.Corruptions != b.corruptions {
				return fmt.Errorf("flips on %s: served %d corruptions, direct run says %d",
					model, rr.Corruptions, b.corruptions)
			}
			if rr.TotalCycles != b.clean.TotalCycles {
				return fmt.Errorf("flips on %s changed timing: %v vs clean %v",
					model, rr.TotalCycles, b.clean.TotalCycles)
			}
			if rr.Degraded {
				return fmt.Errorf("flips on %s marked the run degraded", model)
			}
		case http.StatusTooManyRequests:
		default:
			return fmt.Errorf("flips on %s: status %d %+v", model, code, er)
		}
	}
	return nil
}

// doRun posts one /run request, optionally under ctx. A transport
// error (e.g. the context canceled mid-request) returns code 0.
func doRun(ts *httptest.Server, ctx context.Context, rr RunRequest) (int, *RunResponse, *ErrorResponse) {
	body, err := json.Marshal(rr)
	if err != nil {
		return 0, nil, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/run", bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := ts.Client().Do(req)
	if err != nil {
		return 0, nil, nil
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		var out RunResponse
		if json.NewDecoder(resp.Body).Decode(&out) != nil {
			return resp.StatusCode, nil, nil
		}
		return resp.StatusCode, &out, nil
	}
	var er ErrorResponse
	if json.NewDecoder(resp.Body).Decode(&er) != nil {
		return resp.StatusCode, nil, nil
	}
	return resp.StatusCode, nil, &er
}

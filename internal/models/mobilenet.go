package models

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// invertedResidualSpec is one (t, c, n, s) row of the MobileNetV2
// architecture table: expansion factor, output channels, repeats, and
// first-repeat stride.
type invertedResidualSpec struct {
	t, c, n, s int
}

// mobileNetV2Specs is the published MobileNetV2 body.
var mobileNetV2Specs = []invertedResidualSpec{
	{1, 16, 1, 1},
	{6, 24, 2, 2},
	{6, 32, 3, 2},
	{6, 64, 4, 2},
	{6, 96, 3, 1},
	{6, 160, 3, 2},
	{6, 320, 1, 1},
}

// invertedResidual appends one MobileNetV2 block: 1x1 expansion,
// 3x3 depthwise, 1x1 linear projection, with a residual add when the
// geometry allows.
func invertedResidual(b *builder, name string, in graph.LayerID, t, outC, stride int) graph.LayerID {
	inC := b.shape(in).C
	x := in
	if t != 1 {
		x = b.conv(name+"_expand", x, 1, 1, inC*t)
	}
	x = b.dwconv(name+"_dw", x, 3, stride)
	x = b.convLinear(name+"_project", x, 1, 1, outC)
	if stride == 1 && inC == outC {
		x = b.add(name+"_add", in, x)
	}
	return x
}

// mobileNetV2Body builds the MobileNetV2 feature extractor up to the
// final 320-channel block and returns the taps used by SSD heads:
// the expanded 19x19 feature (block 13 expansion) and the final
// feature map.
func mobileNetV2Body(b *builder, in graph.LayerID) (final graph.LayerID) {
	x := b.conv("conv1", in, 3, 2, 32)
	blk := 0
	for _, spec := range mobileNetV2Specs {
		for r := 0; r < spec.n; r++ {
			stride := spec.s
			if r > 0 {
				stride = 1
			}
			x = invertedResidual(b, fmt.Sprintf("block%d", blk), x, spec.t, spec.c, stride)
			blk++
		}
	}
	return x
}

// MobileNetV2 builds the Sandler et al. classifier (224x224x3, INT8).
func MobileNetV2() *graph.Graph {
	b := newBuilder("MobileNetV2", tensor.Int8)
	in := b.input(tensor.NewShape(224, 224, 3))
	x := mobileNetV2Body(b, in)
	x = b.conv("conv_last", x, 1, 1, 1280)
	b.classifierHead(x, 1000)
	return b.g
}

package core

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"repro/internal/arch"
	"repro/internal/graph"
)

// CacheKey identifies one compilation point: independent fingerprints
// of the graph, the architecture, and the options. Two graphs built
// separately from the same model definition fingerprint identically,
// so sweeps that rebuild a model per experiment still share compiles.
type CacheKey struct {
	Graph, Arch, Opt uint64
}

// String renders the key for diagnostics.
func (k CacheKey) String() string {
	return fmt.Sprintf("g%016x/a%016x/o%016x", k.Graph, k.Arch, k.Opt)
}

// Fingerprint computes the cache key of a compilation point. Every
// field that influences compilation feeds the hash: the full layer
// list with operator attributes for the graph, every core and platform
// parameter for the architecture, and all option toggles including the
// WeightScale vector.
func Fingerprint(g *graph.Graph, a *arch.Arch, opt Options) CacheKey {
	var k CacheKey

	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|", g.Name, g.DType)
	for _, l := range g.Layers() {
		fmt.Fprintf(h, "%s|%#v|%v|%v|%d;", l.Name, l.Op, l.Inputs, l.OutShape, l.DType)
	}
	k.Graph = h.Sum64()

	h = fnv.New64a()
	fmt.Fprintf(h, "%#v", *a)
	k.Arch = h.Sum64()

	h = fnv.New64a()
	fmt.Fprintf(h, "%#v", opt)
	k.Opt = h.Sum64()
	return k
}

// compileCache maps CacheKey to *Result. Entries are immutable once
// stored; CompileCached hands out shallow copies so a caller reslicing
// the Result struct cannot poison the cache. sync.Map fits the access
// pattern: written once per configuration, read by every revisit.
var (
	compileCache sync.Map
	cacheHits    atomic.Int64
	cacheMisses  atomic.Int64
)

// CompileCached is Compile with memoization keyed by Fingerprint. The
// returned Result shares the cached Program/Plans/Strata (treat them
// as read-only, which every consumer — simulator, reports, validators
// — already does). Concurrent calls for the same key may both compile;
// the results are bit-identical, and the first store wins.
func CompileCached(g *graph.Graph, a *arch.Arch, opt Options) (*Result, error) {
	return CompileCachedCtx(nil, g, a, opt)
}

// CompileCachedCtx is CompileCached with cooperative cancellation (see
// CompileCtx). Cancellation can never corrupt the cache: a hit is
// served without touching the context, and a miss only stores a fully
// admitted Result — an aborted compile returns its error and leaves
// the entry absent, so the next identical request compiles cleanly.
func CompileCachedCtx(ctx context.Context, g *graph.Graph, a *arch.Arch, opt Options) (*Result, error) {
	key := Fingerprint(g, a, opt)
	if v, ok := compileCache.Load(key); ok {
		cacheHits.Add(1)
		res := *v.(*Result)
		return &res, nil
	}
	cacheMisses.Add(1)
	res, err := CompileCtx(ctx, g, a, opt)
	if err != nil {
		return nil, err
	}
	v, _ := compileCache.LoadOrStore(key, res)
	out := *v.(*Result)
	return &out, nil
}

// Cached reports whether a compilation point is already memoized (a
// CompileCached call would hit). Serving layers use it to label
// responses; the answer is advisory under concurrency.
func Cached(g *graph.Graph, a *arch.Arch, opt Options) bool {
	_, ok := compileCache.Load(Fingerprint(g, a, opt))
	return ok
}

// CacheStats reports cumulative CompileCached hits and misses.
func CacheStats() (hits, misses int64) {
	return cacheHits.Load(), cacheMisses.Load()
}

// ResetCache drops every cached compilation and zeroes the counters
// (benchmarks use it to measure cold compiles).
func ResetCache() {
	compileCache.Range(func(k, _ any) bool {
		compileCache.Delete(k)
		return true
	})
	cacheHits.Store(0)
	cacheMisses.Store(0)
}

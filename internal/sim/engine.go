package sim

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/arch"
	"repro/internal/cost"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/plan"
)

// This file is the production event-driven engine. It replaces the
// reference engine's four per-step linear scans (in-flight transfers,
// pending DMA setups, busy compute engines, released barriers) with a
// single indexed min-heap of pending events, its full issueAll rescans
// with a ready list fed by dependency-count decrements, and its
// per-step sort-and-allocate bus arbitration with a water-filling set
// that is rebuilt only when membership or core speeds change. All
// per-run scratch lives in a pooled machine struct, so steady-state
// simulation performs no heap allocations beyond the Result handed to
// the caller.
//
// The engine is required to be bit-identical to reference.go — same
// cycle counts, same floating-point stats accumulation, same trace
// event order, same fault behavior — which pins several design points:
//
//   - Transfer completion times are recomputed from remaining/rate
//     every step rather than cached across steps: draining subtracts
//     rate*dt, and (rem - r*dt)/r differs from rem/r - dt in floating
//     point, so a cached projection would drift off the reference.
//   - Due completions are processed in the reference's canonical order
//     (bus channels by capacity, then direct channels, then compute by
//     core, then barriers by placement), not heap-pop order, because
//     trace order and stats accumulation order observe it.
//   - The water-filling set keeps bus channels sorted by capacity with
//     a stable insertion sort. sort.Slice also runs an insertion sort
//     at the channel counts real architectures produce (<= 2 per core,
//     well under its small-slice cutoff), so tie order matches.
//   - Merged busy intervals exploit that completion times never
//     decrease: appending merges in place, and summing the disjoint
//     intervals left to right reproduces unionLength's accumulation
//     order exactly.

// numEngines is the per-core engine count (load, compute, store, sync).
const numEngines = 4

// echannel is one in-flight DMA transfer participating in bandwidth
// allocation.
type echannel struct {
	nid int32
	cap float64
}

// ebarrier is the event engine's rendezvous state. Arrival times are
// folded into a running max (the reference's maxArr scan over
// arrivals); arrived nodes are recorded in barNodes[arrStart:] in
// placement-local core order, which completion preserves.
type ebarrier struct {
	arrStart int32
	nlocal   int32
	arrived  int32
	released bool
	maxArr   float64
	finish   float64
}

// machine is the pooled per-run state of the event engine. Every slice
// is sized by resize helpers that reuse capacity, so a warm machine
// runs a simulation without allocating; only the Result (and its
// PerCore/ProgramCycles/Trace slices, which are handed to the caller)
// is fresh per run.
type machine struct {
	a          *arch.Arch
	model      cost.Model
	placements []Placement
	cfg        Config

	fs      *faultState // nil when the plan injects nothing
	fsStore faultState  // backing storage for fs, pooled

	total  int
	ncores int

	nodes []node

	// Dependents in CSR form: the nodes unblocked by node n's
	// completion are depEdges[depOff[n]:depOff[n+1]].
	depOff   []int32
	depCur   []int32
	depEdges []int32

	coreOf  []int32 // node -> global core
	progOf  []int32 // node -> placement index
	indexOf []int32 // node -> position within its core-local stream

	// Global node numbering: placement pi's local core lc starts at
	// baseFlat[streamStart[pi]+lc], matching the reference's streamKey
	// map (and fault.Plan.Drops transfer identity).
	streamStart []int32
	baseFlat    []int32

	// Engine queues in CSR form, flat index ei = core*numEngines +
	// engine: queue is qBuf[qOff[ei]:qOff[ei+1]], next-to-issue cursor
	// qPos[ei], active node busyN[ei] (-1 idle).
	qOff  []int32
	qPos  []int32
	qBuf  []int32
	busyN []int32

	// Barriers flattened across placements: placement pi's barrier b is
	// bars[barOff[pi]+b].
	barOff   []int32
	bars     []ebarrier
	barNodes []int32

	owner      []int32 // global core -> placement index (-1 unassigned)
	localIndex []int32 // global core -> placement-local index

	// Per-placement layer accounting for checkpoint recovery (fault
	// runs only), flattened: placement pi's layers occupy
	// [layerOff[pi]:layerOff[pi+1]].
	layerOff   []int32
	layerDone  []int
	layerTotal []int
	layerStore []bool
	pending    []int32 // per global core, instructions not yet finished

	stats Stats
	trace []Event

	// Per-core busy intervals, kept merged (disjoint, sorted) as they
	// are appended.
	busyIv [][][2]float64

	// Bandwidth allocation: rates by node id, the bus water-filling set
	// (sorted by cap) and the dedicated-interconnect set, rebuilt only
	// when dirty (membership or speed change).
	rates  []float64
	chans  []echannel
	direct []echannel
	dirty  bool

	// SPM admission check (spmcheck.go): bytes each live buffer owner
	// still holds (0 = none or freed), outstanding reader counts, and
	// per-core live totals. spmOn mirrors !Config.NoSPMCheck.
	spmOn      bool
	spmBuf     []int64
	spmReaders []int32
	spmLive    []int64

	heap eventHeap

	// Engines that may have an issuable queue head, deduplicated by
	// readyFlag.
	readyStack []int32
	readyFlag  []bool

	// Due-event staging, re-sorted into the reference's completion
	// order each step.
	dueCompute  []int32
	dueBarriers []int32

	// Watchdog: heartbeat interval (0 = off), next beat time, and the
	// scratch list of cores found stalled at the current beat.
	wdH        float64
	nextBeat   float64
	wdCulprits []int

	// Stratum-boundary checksum state (FlipRate > 0 only), flattened
	// like the layer accounting: placement pi's strata occupy
	// [strOff[pi]:strOff[pi+1]]. layerStr maps a flattened layer to
	// its local stratum index; strLeft counts unfinished instructions
	// per stratum; strFlips counts corrupted transfers per stratum.
	flipOn   bool
	strOff   []int32
	layerStr []int32
	strLeft  []int32
	strFlips []int32
	corrupt  []Corruption // handed to the caller, fresh per run

	now       float64
	completed int
}

var machinePool = sync.Pool{New: func() any { return new(machine) }}

// RunConcurrent simulates several programs sharing one architecture's
// cores and bus, using the event-driven engine.
func RunConcurrent(a *arch.Arch, placements []Placement, cfg Config) (*Result, error) {
	m := machinePool.Get().(*machine)
	res, err := m.run(a, placements, cfg)
	m.release()
	machinePool.Put(m)
	return res, err
}

// release drops references to caller-owned data so the pooled machine
// retains only its reusable scratch capacity.
func (m *machine) release() {
	m.a = nil
	m.model = cost.Model{}
	m.placements = nil
	m.cfg = Config{}
	m.fs = nil
	m.fsStore.plan = nil
	m.stats = Stats{}
	m.trace = nil
	m.corrupt = nil
}

func (m *machine) speedOf(c int) float64 {
	if m.fs == nil {
		return 1
	}
	return m.fs.speed[c]
}

func (m *machine) run(a *arch.Arch, placements []Placement, cfg Config) (*Result, error) {
	m.a, m.placements, m.cfg = a, placements, cfg
	m.model = cost.Model{Arch: a}
	ncores := a.NumCores()
	m.ncores = ncores

	m.fs = nil
	active, err := m.fsStore.init(cfg.Faults, ncores)
	if err != nil {
		return nil, err
	}
	if active {
		m.fs = &m.fsStore
	}

	// Validate placements: disjoint cores, in range, matching widths.
	m.owner = resizeInt32Fill(m.owner, ncores, -1)
	for pi, pl := range placements {
		if len(pl.Cores) != len(pl.Program.Cores) {
			return nil, fmt.Errorf("sim: placement %d maps %d cores for a %d-core program",
				pi, len(pl.Cores), len(pl.Program.Cores))
		}
		for _, c := range pl.Cores {
			if c < 0 || c >= ncores {
				return nil, fmt.Errorf("sim: placement %d core %d out of range", pi, c)
			}
			if m.owner[c] >= 0 {
				return nil, fmt.Errorf("sim: core %d claimed by placements %d and %d", c, m.owner[c], pi)
			}
			m.owner[c] = int32(pi)
		}
	}

	// Global node numbering across placements and their cores.
	m.streamStart = m.streamStart[:0]
	m.baseFlat = m.baseFlat[:0]
	total := 0
	for _, pl := range placements {
		m.streamStart = append(m.streamStart, int32(len(m.baseFlat)))
		for lc := range pl.Program.Cores {
			m.baseFlat = append(m.baseFlat, int32(total))
			total += len(pl.Program.Cores[lc])
		}
	}
	m.total = total

	m.nodes = resizeNodes(m.nodes, total)
	m.coreOf = resizeInt32(m.coreOf, total)
	m.progOf = resizeInt32(m.progOf, total)
	m.indexOf = resizeInt32(m.indexOf, total)
	m.rates = resizeFloat64(m.rates, total)

	ne := ncores * numEngines
	m.qOff = resizeInt32(m.qOff, ne+1)
	m.qPos = resizeInt32(m.qPos, ne)
	m.busyN = resizeInt32Fill(m.busyN, ne, -1)
	m.depOff = resizeInt32(m.depOff, total+1)
	m.depCur = resizeInt32(m.depCur, total)

	m.localIndex = resizeInt32Fill(m.localIndex, ncores, -1)
	for _, pl := range placements {
		for lc, c := range pl.Cores {
			m.localIndex[c] = int32(lc)
		}
	}

	// Pass 1: node state, counts for the queue and dependent CSRs.
	for pi, pl := range placements {
		for lc, stream := range pl.Program.Cores {
			gcore := pl.Cores[lc]
			b := int(m.baseFlat[m.streamStart[pi]+int32(lc)])
			for i, in := range stream {
				n := b + i
				m.nodes[n] = node{in: in, deps: len(in.Deps)}
				m.coreOf[n] = int32(gcore)
				m.progOf[n] = int32(pi)
				m.indexOf[n] = int32(i)
				m.qOff[gcore*numEngines+int(in.Op.Engine())+1]++
				for _, d := range in.Deps {
					m.depOff[int(m.baseFlat[m.streamStart[pi]+int32(d.Core)])+d.Index+1]++
				}
			}
		}
	}
	for ei := 0; ei < ne; ei++ {
		m.qOff[ei+1] += m.qOff[ei]
	}
	for n := 0; n < total; n++ {
		m.depOff[n+1] += m.depOff[n]
	}
	m.qBuf = resizeInt32(m.qBuf, total)
	m.depEdges = resizeInt32(m.depEdges, int(m.depOff[total]))
	copy(m.qPos, m.qOff[:ne])
	copy(m.depCur, m.depOff[:total])

	// Pass 2: fill both CSRs in the reference's append order.
	for pi, pl := range placements {
		for lc, stream := range pl.Program.Cores {
			gcore := pl.Cores[lc]
			b := int(m.baseFlat[m.streamStart[pi]+int32(lc)])
			for i, in := range stream {
				n := b + i
				ei := gcore*numEngines + int(in.Op.Engine())
				m.qBuf[m.qPos[ei]] = int32(n)
				m.qPos[ei]++
				for _, d := range in.Deps {
					dn := int(m.baseFlat[m.streamStart[pi]+int32(d.Core)]) + d.Index
					m.depEdges[m.depCur[dn]] = int32(n)
					m.depCur[dn]++
				}
			}
		}
	}
	copy(m.qPos, m.qOff[:ne]) // rewind issue cursors

	// SPM admission state: owner bytes per node, and reader counts per
	// owner from the dependent CSR filtered to genuine data reads.
	m.spmOn = !cfg.NoSPMCheck
	if m.spmOn {
		m.spmBuf = resizeInt64(m.spmBuf, total)
		m.spmReaders = resizeInt32(m.spmReaders, total)
		m.spmLive = resizeInt64(m.spmLive, ncores)
		for n := 0; n < total; n++ {
			m.spmBuf[n] = spmOwnedBytes(&m.nodes[n].in)
		}
		for d := 0; d < total; d++ {
			if m.spmBuf[d] <= 0 {
				continue
			}
			for _, n := range m.depEdges[m.depOff[d]:m.depOff[d+1]] {
				if spmReads(m.nodes[d].in.Op, m.nodes[n].in.Op) {
					m.spmReaders[d]++
				}
			}
		}
	}

	// Barriers, flattened.
	m.barOff = m.barOff[:0]
	m.bars = m.bars[:0]
	m.barNodes = m.barNodes[:0]
	for _, pl := range placements {
		m.barOff = append(m.barOff, int32(len(m.bars)))
		for i := 0; i < pl.Program.NumBarriers; i++ {
			m.bars = append(m.bars, ebarrier{arrStart: int32(len(m.barNodes)), nlocal: int32(len(pl.Cores))})
			for range pl.Cores {
				m.barNodes = append(m.barNodes, -1)
			}
		}
	}
	m.barOff = append(m.barOff, int32(len(m.bars)))
	totalBarriers := len(m.bars)

	// Per-placement layer accounting for checkpoint recovery.
	if m.fs != nil {
		m.layerOff = m.layerOff[:0]
		nl := 0
		for _, pl := range placements {
			m.layerOff = append(m.layerOff, int32(nl))
			nl += pl.Program.Graph.Len()
		}
		m.layerOff = append(m.layerOff, int32(nl))
		m.layerDone = resizeInt(m.layerDone, nl)
		m.layerTotal = resizeInt(m.layerTotal, nl)
		m.layerStore = resizeBool(m.layerStore, nl)
		for pi, pl := range placements {
			off := int(m.layerOff[pi])
			for _, stream := range pl.Program.Cores {
				for _, in := range stream {
					m.layerTotal[off+int(in.Layer)]++
					// Only plan.Store reaches global memory; halo stores land
					// in a peer's SPM and die with it.
					if in.Op == plan.Store {
						m.layerStore[off+int(in.Layer)] = true
					}
				}
			}
		}
		m.pending = resizeInt32(m.pending, ncores)
		for nid := 0; nid < total; nid++ {
			m.pending[m.coreOf[nid]]++
		}
	}

	// Watchdog heartbeat: only meaningful when faults are injected (a
	// fault-free run cannot stall), which also keeps the fault-free
	// fast path untouched.
	m.wdH = 0
	if cfg.WatchdogCycles > 0 && m.fs != nil {
		m.wdH = cfg.WatchdogCycles
	}
	m.nextBeat = m.wdH
	m.wdCulprits = m.wdCulprits[:0]

	// Stratum-boundary checksum accounting for silent-corruption
	// detection. Programs without strata (base config) checksum at
	// every layer boundary instead.
	m.flipOn = m.fs != nil && m.fs.plan.FlipRate > 0
	m.corrupt = nil
	if m.flipOn {
		nl := int(m.layerOff[len(placements)])
		m.layerStr = resizeInt32Fill(m.layerStr, nl, -1)
		m.strOff = m.strOff[:0]
		ns := 0
		for pi, pl := range placements {
			m.strOff = append(m.strOff, int32(ns))
			off := int(m.layerOff[pi])
			if len(pl.Program.Strata) == 0 {
				for l := 0; l < pl.Program.Graph.Len(); l++ {
					m.layerStr[off+l] = int32(l)
				}
				ns += pl.Program.Graph.Len()
				continue
			}
			for si, s := range pl.Program.Strata {
				for _, id := range s {
					m.layerStr[off+int(id)] = int32(si)
				}
			}
			ns += len(pl.Program.Strata)
		}
		m.strOff = append(m.strOff, int32(ns))
		m.strLeft = resizeInt32(m.strLeft, ns)
		m.strFlips = resizeInt32(m.strFlips, ns)
		for nid := 0; nid < total; nid++ {
			pi := int(m.progOf[nid])
			if si := m.layerStr[int(m.layerOff[pi])+int(m.nodes[nid].in.Layer)]; si >= 0 {
				m.strLeft[int(m.strOff[pi])+int(si)]++
			}
		}
	}

	m.stats = Stats{
		PerCore:       make([]CoreStats, ncores),
		Barriers:      totalBarriers,
		ProgramCycles: make([]float64, len(placements)),
	}
	m.trace = nil
	if cfg.CollectTrace && total > 0 {
		// Every instruction finishes exactly once, so the trace holds
		// exactly total events: allocate it full-size up front.
		m.trace = make([]Event, 0, total)
	}

	for cap(m.busyIv) < ncores {
		m.busyIv = append(m.busyIv[:cap(m.busyIv)], nil)
	}
	m.busyIv = m.busyIv[:ncores]
	for c := range m.busyIv {
		m.busyIv[c] = m.busyIv[c][:0]
	}

	m.chans = m.chans[:0]
	m.direct = m.direct[:0]
	m.dirty = false
	m.heap.reset(total, totalBarriers)
	m.readyFlag = resizeBool(m.readyFlag, ne)
	m.readyStack = m.readyStack[:0]
	for ei := 0; ei < ne; ei++ {
		m.pushReady(int32(ei))
	}
	m.now = 0
	m.completed = 0

	for step := 0; m.completed < total; step++ {
		if err := canceled(cfg.Ctx, step, m.now, m.completed, total); err != nil {
			return nil, err
		}
		// Fault events due now fire before new work issues: a throttle
		// or silent slowdown rescales the core's in-flight compute (and
		// its DMA capacity, via the dirty rebuild); a hang freezes the
		// core entirely; a death fails the run if the core still owes
		// instructions (and is inert otherwise).
		if m.fs != nil {
			for _, ev := range m.fs.fire(m.now) {
				switch ev.kind {
				case fault.KindDeath:
					if m.owner[ev.core] >= 0 && m.pending[ev.core] > 0 {
						return nil, m.failCore(FailCoreDeath, ev.core)
					}
					continue
				case fault.KindHang:
					// Freeze in-flight compute: bank the unit-speed work
					// left and park the node until the resume (if any).
					// In-flight DMA freezes through the rebuild (zero
					// capacity, zero water-filled rate), and nothing new
					// issues while the core is hung.
					if nid := m.busyN[ev.core*numEngines+int(plan.EngineCompute)]; nid >= 0 {
						n := &m.nodes[nid]
						if n.finish > m.now && ev.oldSpeed > 0 {
							n.remaining = (n.finish - m.now) * ev.oldSpeed
							n.finish = math.Inf(1)
							m.heap.remove(evCompute, nid)
						}
					}
				case fault.KindResume:
					if nid := m.busyN[ev.core*numEngines+int(plan.EngineCompute)]; nid >= 0 {
						n := &m.nodes[nid]
						if math.IsInf(n.finish, 1) && ev.newSpeed > 0 {
							n.finish = m.now + n.remaining/ev.newSpeed
							m.heap.update(evCompute, nid, n.finish)
						}
					}
					for e := 0; e < numEngines; e++ {
						m.pushReady(int32(ev.core*numEngines + e))
					}
				default: // announced throttle or silent slowdown
					if nid := m.busyN[ev.core*numEngines+int(plan.EngineCompute)]; nid >= 0 {
						n := &m.nodes[nid]
						if n.finish > m.now && ev.oldSpeed > 0 && ev.newSpeed > 0 {
							n.finish = m.now + (n.finish-m.now)*ev.oldSpeed/ev.newSpeed
							m.heap.update(evCompute, nid, n.finish)
						}
					}
				}
				m.dirty = true
			}
			m.syncFaultEvent()
		}

		m.issueReady()

		if m.spmOn {
			if err := m.checkSPM(); err != nil {
				return nil, err
			}
		}

		// Watchdog beat: after issue (so "idle engine with an issuable
		// head" is genuine evidence of a stall, not a not-yet-processed
		// wake). A barren beat on a quiescent machine is a deadlock,
		// handled below.
		beatBarren := false
		if m.wdH > 0 && m.now >= m.nextBeat-eps {
			m.scanStalled()
			if len(m.wdCulprits) > 0 {
				return nil, m.hangDetected()
			}
			beatBarren = true
			for m.nextBeat <= m.now+eps {
				m.nextBeat += m.wdH
			}
		}

		if m.dirty {
			m.rebuildChannels()
			m.dirty = false
		}

		// Earliest next completion: in-flight transfer projections
		// (recomputed, see file comment) and the heap top, which covers
		// compute finishes, setup deadlines, released barriers, and the
		// next fault firing.
		next := math.Inf(1)
		for _, ch := range m.chans {
			if r := m.rates[ch.nid]; r > 0 {
				if t := m.now + m.nodes[ch.nid].remaining/r; t < next {
					next = t
				}
			}
		}
		for _, ch := range m.direct {
			if r := m.rates[ch.nid]; r > 0 {
				if t := m.now + m.nodes[ch.nid].remaining/r; t < next {
					next = t
				}
			}
		}
		if top, ok := m.heap.top(); ok && top.t < next {
			next = top.t
		}
		if math.IsInf(next, 1) {
			// Quiescent. With the watchdog on, give it one more beat to
			// name the culprits — unless the beat just ran and found
			// none, in which case this is a genuine deadlock.
			if m.wdH <= 0 || beatBarren {
				return nil, deadlockError(m.now, m.completed, total, m.hungPending())
			}
		}
		if m.wdH > 0 && m.nextBeat < next {
			next = m.nextBeat
		}
		if next < m.now {
			next = m.now
		}

		// Advance time, draining transfers.
		dt := next - m.now
		for _, ch := range m.chans {
			m.nodes[ch.nid].remaining -= m.rates[ch.nid] * dt
		}
		for _, ch := range m.direct {
			m.nodes[ch.nid].remaining -= m.rates[ch.nid] * dt
		}
		m.now = next

		// Pop everything due, staging completions; a due setup deadline
		// only changes water-filling membership, and a due fault entry
		// is consumed by fire() at the next loop top.
		m.dueCompute = m.dueCompute[:0]
		m.dueBarriers = m.dueBarriers[:0]
		for {
			top, ok := m.heap.top()
			if !ok || top.t > m.now+eps {
				break
			}
			m.heap.pop()
			switch top.kind {
			case evSetup:
				m.dirty = true
			case evCompute:
				m.dueCompute = append(m.dueCompute, top.id)
			case evBarrier:
				m.dueBarriers = append(m.dueBarriers, top.id)
			}
		}

		// Complete everything due, in the reference's order: transfers
		// (bus set then direct set), compute by core, barriers by
		// placement.
		if cf := m.completeDMA(); cf != nil {
			return nil, cf
		}
		insertionSortByKey(m.dueCompute, func(id int32) int32 { return m.coreOf[id] })
		for _, nid := range m.dueCompute {
			if !m.nodes[nid].done {
				m.finishNode(int(nid), m.now)
			}
		}
		insertionSortByKey(m.dueBarriers, func(id int32) int32 { return id })
		for _, fb := range m.dueBarriers {
			b := &m.bars[fb]
			for _, nid := range m.barNodes[b.arrStart : b.arrStart+b.nlocal] {
				if nid >= 0 && !m.nodes[nid].done {
					m.finishNode(int(nid), m.now)
				}
			}
		}
	}

	m.stats.TotalCycles = m.now
	for c := 0; c < ncores; c++ {
		m.stats.PerCore[c].Idle = m.stats.TotalCycles - mergedLength(m.busyIv[c])
	}
	if h := m.cfg.Hook; h != nil {
		// Close the bus series: the last rebuild's allocation ends here
		// (the final transfer's completion need not trigger a rebuild).
		h.OnBus(BusSample{At: m.now})
	}
	return &Result{Stats: m.stats, Trace: m.trace, Corruptions: m.corrupt}, nil
}

func (m *machine) pushReady(ei int32) {
	if !m.readyFlag[ei] {
		m.readyFlag[ei] = true
		m.readyStack = append(m.readyStack, ei)
	}
}

// issueReady starts every instruction that can start at time now: the
// queue heads of engines flagged ready (freed, or head unblocked).
// Issuing never satisfies another node's dependencies, so one pass over
// the flagged engines reaches the reference's issueAll fixpoint.
func (m *machine) issueReady() {
	for len(m.readyStack) > 0 {
		ei := m.readyStack[len(m.readyStack)-1]
		m.readyStack = m.readyStack[:len(m.readyStack)-1]
		m.readyFlag[ei] = false
		if m.busyN[ei] >= 0 || m.qPos[ei] >= m.qOff[ei+1] {
			continue
		}
		if m.fs != nil && m.fs.hung[int(ei)/numEngines] {
			continue // silently stalled: nothing issues until the resume
		}
		nid := m.qBuf[m.qPos[ei]]
		n := &m.nodes[nid]
		if n.deps > 0 {
			continue
		}
		// Issue.
		m.qPos[ei]++
		n.started = true
		n.start = m.now
		c := int(ei) / numEngines
		if m.spmOn {
			if b := m.spmBuf[nid]; b > 0 {
				m.spmLive[c] += b
			}
		}
		pi := int(m.progOf[nid])
		switch n.in.Op.Engine() {
		case plan.EngineCompute:
			dt := m.placements[pi].Program.Graph.Layer(n.in.Layer).DType
			n.finish = m.now + float64(m.model.ComputeCycles(c, n.in.MACs, dt))/m.speedOf(c)
			m.busyN[ei] = nid
			m.heap.update(evCompute, nid, n.finish)
		case plan.EngineLoad, plan.EngineStore:
			n.remaining = float64(n.in.Bytes)
			n.setupUntil = m.now + float64(m.a.DMASetupCycles)
			m.busyN[ei] = nid
			if n.setupUntil > m.now+eps {
				m.heap.update(evSetup, nid, n.setupUntil)
			} else {
				m.dirty = true // joins the water-filling set immediately
			}
		case plan.EngineSync:
			fb := m.barOff[pi] + int32(n.in.BarrierID)
			b := &m.bars[fb]
			m.barNodes[b.arrStart+m.localIndex[c]] = nid
			if m.now > b.maxArr {
				b.maxArr = m.now
			}
			b.arrived++
			m.busyN[ei] = nid
			if int(b.arrived) == len(m.placements[pi].Cores) {
				b.finish = b.maxArr + float64(m.a.SyncCost(len(m.placements[pi].Cores))) +
					jitter(n.in.BarrierID, m.a.SyncJitterCycles)
				b.released = true
				m.heap.update(evBarrier, fb, b.finish)
			}
		}
	}
}

// rebuildChannels regathers the in-flight DMA sets and recomputes
// max-min fair rates. Called only when membership or core speeds
// changed; between calls the cached rates stay exact because
// water-filling is a pure function of (membership, caps, bus ceiling).
func (m *machine) rebuildChannels() {
	m.chans = m.chans[:0]
	m.direct = m.direct[:0]
	for c := 0; c < m.ncores; c++ {
		for _, e := range [2]plan.Engine{plan.EngineLoad, plan.EngineStore} {
			nid := m.busyN[c*numEngines+int(e)]
			if nid < 0 {
				continue
			}
			n := &m.nodes[nid]
			if n.setupUntil > m.now+eps {
				continue // descriptor setup pending; its heap entry wakes us
			}
			ch := echannel{nid: nid, cap: m.a.Cores[c].DMABytesPerCycle * m.speedOf(c)}
			op := n.in.Op
			if m.a.DirectHaloInterconnect && (op == plan.StoreHalo || op == plan.LoadHalo) {
				m.direct = append(m.direct, ch)
				continue
			}
			m.chans = append(m.chans, ch)
		}
	}
	// Dedicated link: full engine rate, no bus contention.
	for _, ch := range m.direct {
		m.rates[ch.nid] = ch.cap
	}
	// Max-min fair water-filling under the bus ceiling, lowest-capacity
	// channels first (stable sort; see file comment on tie order).
	for i := 1; i < len(m.chans); i++ {
		for j := i; j > 0 && m.chans[j].cap < m.chans[j-1].cap; j-- {
			m.chans[j], m.chans[j-1] = m.chans[j-1], m.chans[j]
		}
	}
	remainingBW := m.a.BusBytesPerCycle
	for i, ch := range m.chans {
		share := remainingBW / float64(len(m.chans)-i)
		r := math.Min(ch.cap, share)
		m.rates[ch.nid] = r
		remainingBW -= r
	}
	if h := m.cfg.Hook; h != nil {
		s := BusSample{At: m.now, Channels: len(m.chans), DirectChannels: len(m.direct)}
		for _, ch := range m.chans {
			s.Demand += ch.cap
			s.Granted += m.rates[ch.nid]
		}
		for _, ch := range m.direct {
			s.DirectGranted += m.rates[ch.nid]
		}
		h.OnBus(s)
	}
}

// completeDMA finishes (or drops) every in-flight transfer whose bytes
// ran out, walking the bus set then the direct set — the order the
// reference iterates its allocate() result in.
func (m *machine) completeDMA() *CoreFailure {
	nbus := len(m.chans)
	for i := 0; i < nbus+len(m.direct); i++ {
		var nid int32
		if i < nbus {
			nid = m.chans[i].nid
		} else {
			nid = m.direct[i-nbus].nid
		}
		n := &m.nodes[nid]
		if n.remaining > eps || n.done {
			continue
		}
		// An injected drop fails the transfer after it moved its bytes:
		// the bandwidth was spent, the data must be re-sent after an
		// exponential backoff.
		if m.fs != nil && m.fs.plan.Drops(int(nid), n.attempt) {
			n.attempt++
			m.stats.PerCore[m.coreOf[nid]].Retries++
			if n.attempt > m.fs.maxRetries {
				return m.failCore(FailDMAExhausted, int(m.coreOf[nid]))
			}
			n.remaining = float64(n.in.Bytes)
			n.setupUntil = m.now + fault.BackoffCycles(m.a.DMASetupCycles, n.attempt)
			m.rates[nid] = 0 // leaves the set; never reuse the stale rate
			m.dirty = true
			m.heap.update(evSetup, nid, n.setupUntil)
			continue
		}
		// A silent bit-flip corrupts the delivered bytes without any
		// signal; the stratum-boundary checksum catches it later.
		if m.flipOn && m.fs.plan.Flips(int(nid), n.attempt) {
			n.flipped = true
		}
		m.finishNode(int(nid), m.now)
	}
	return nil
}

// finishNode retires one instruction at time t: stats, trace, busy
// intervals, engine release, and dependency-count decrements that feed
// the ready list.
func (m *machine) finishNode(nid int, t float64) {
	n := &m.nodes[nid]
	n.done = true
	m.completed++
	c := int(m.coreOf[nid])
	st := &m.stats.PerCore[c]
	dur := t - n.start
	eng := n.in.Op.Engine()
	switch eng {
	case plan.EngineCompute:
		st.ComputeBusy += dur
		st.MACs += n.in.MACs
	case plan.EngineLoad:
		st.LoadBusy += dur
		st.BytesLoaded += n.in.Bytes
	case plan.EngineStore:
		st.StoreBusy += dur
		st.BytesStored += n.in.Bytes
	case plan.EngineSync:
		st.SyncWait += dur
	}
	if t > st.Finish {
		st.Finish = t
	}
	if t > m.stats.ProgramCycles[m.progOf[nid]] {
		m.stats.ProgramCycles[m.progOf[nid]] = t
	}
	if m.fs != nil {
		m.layerDone[int(m.layerOff[m.progOf[nid]])+int(n.in.Layer)]++
		m.pending[c]--
	}
	if m.flipOn {
		pi := int(m.progOf[nid])
		if si := m.layerStr[int(m.layerOff[pi])+int(n.in.Layer)]; si >= 0 {
			g := int(m.strOff[pi]) + int(si)
			if n.flipped {
				m.strFlips[g]++
			}
			m.strLeft[g]--
			// Stratum complete: verify its boundary checksum. Any
			// corrupted transfer inside it is detected here, bounding
			// the re-execution blast radius to this stratum.
			if m.strLeft[g] == 0 && m.strFlips[g] > 0 {
				m.corrupt = append(m.corrupt, Corruption{
					Placement: pi, Stratum: int(si),
					DetectedAtCycle: t, Transfers: int(m.strFlips[g]),
				})
			}
		}
	}
	m.appendBusy(c, n.start, t)
	if m.cfg.CollectTrace {
		m.trace = append(m.trace, Event{
			Core: c, Index: int(m.indexOf[nid]), Op: n.in.Op, Layer: n.in.Layer, Tile: n.in.Tile,
			Start: n.start, End: t, Retries: n.attempt, Note: n.in.Note,
		})
	}
	if h := m.cfg.Hook; h != nil {
		h.OnInstr(InstrSample{
			Placement: int(m.progOf[nid]), Core: c, Index: int(m.indexOf[nid]),
			Op: n.in.Op, Layer: n.in.Layer, Tile: n.in.Tile,
			Start: n.start, End: t, Bytes: n.in.Bytes, MACs: n.in.MACs, Retries: n.attempt,
		})
	}
	if m.spmOn {
		// The node's own buffer dies now if no reader is outstanding;
		// its deps' buffers die if this was their last reader and the
		// owner already finished.
		if m.spmBuf[nid] > 0 && m.spmReaders[nid] == 0 {
			m.spmLive[c] -= m.spmBuf[nid]
			m.spmBuf[nid] = 0
		}
		pi := m.progOf[nid]
		for _, d := range n.in.Deps {
			dn := int(m.baseFlat[m.streamStart[pi]+int32(d.Core)]) + d.Index
			if m.spmBuf[dn] > 0 && spmReads(m.nodes[dn].in.Op, n.in.Op) {
				m.spmReaders[dn]--
				if m.spmReaders[dn] == 0 && m.nodes[dn].done {
					m.spmLive[m.coreOf[dn]] -= m.spmBuf[dn]
					m.spmBuf[dn] = 0
				}
			}
		}
	}
	ei := c*numEngines + int(eng)
	if m.busyN[ei] == int32(nid) {
		m.busyN[ei] = -1
		if eng == plan.EngineLoad || eng == plan.EngineStore {
			m.rates[nid] = 0 // leaves the set; never reuse the stale rate
			m.dirty = true
		}
		m.pushReady(int32(ei))
	}
	for _, d := range m.depEdges[m.depOff[nid]:m.depOff[nid+1]] {
		dn := &m.nodes[d]
		dn.deps--
		if dn.deps == 0 {
			dei := int(m.coreOf[d])*numEngines + int(dn.in.Op.Engine())
			// Wake the engine only if this node is its issuable head.
			if m.busyN[dei] < 0 && m.qPos[dei] < m.qOff[dei+1] && m.qBuf[m.qPos[dei]] == d {
				m.pushReady(int32(dei))
			}
		}
	}
}

// appendBusy records a finished instruction's interval, merging on
// append. Ends arrive in non-decreasing order, so overlap can only be
// with the tail of the merged list.
func (m *machine) appendBusy(c int, s, e float64) {
	iv := m.busyIv[c]
	for len(iv) > 0 && s <= iv[len(iv)-1][1] {
		last := iv[len(iv)-1]
		if last[0] < s {
			s = last[0]
		}
		if last[1] > e {
			e = last[1]
		}
		iv = iv[:len(iv)-1]
	}
	m.busyIv[c] = append(iv, [2]float64{s, e})
}

// mergedLength sums a merged interval list, left to right — the same
// accumulation order unionLength uses after sorting, so the result is
// bit-identical.
func mergedLength(iv [][2]float64) float64 {
	total := 0.0
	for _, x := range iv {
		total += x[1] - x[0]
	}
	return total
}

// syncFaultEvent re-keys the heap's fault entry to the next pending
// firing (or removes it when the plan is exhausted).
func (m *machine) syncFaultEvent() {
	t := m.fs.next()
	if math.IsInf(t, 1) {
		m.heap.remove(evFault, 0)
		return
	}
	m.heap.update(evFault, 0, t)
}

// partialStats snapshots the statistics accumulated so far, with idle
// time recomputed up to the current cycle.
func (m *machine) partialStats() Stats {
	partial := m.stats
	partial.PerCore = append([]CoreStats(nil), m.stats.PerCore...)
	partial.ProgramCycles = append([]float64(nil), m.stats.ProgramCycles...)
	partial.TotalCycles = m.now
	for c := 0; c < m.ncores; c++ {
		idle := m.now - mergedLength(m.busyIv[c])
		if idle < 0 {
			idle = 0
		}
		partial.PerCore[c].Idle = idle
	}
	return partial
}

// checkpointOf computes the recovery cut for placement pi (-1 or an
// unassigned core yields nil).
func (m *machine) checkpointOf(pi int) []graph.LayerID {
	if pi < 0 {
		return nil
	}
	lo, hi := m.layerOff[pi], m.layerOff[pi+1]
	return checkpoint(m.placements[pi].Program, m.layerDone[lo:hi], m.layerTotal[lo:hi], m.layerStore[lo:hi])
}

// failCore snapshots the run state into a typed CoreFailure.
func (m *machine) failCore(kind FailureKind, core int) *CoreFailure {
	pi := int(m.owner[core])
	return &CoreFailure{
		Kind: kind, Core: core, Placement: pi, AtCycle: m.now,
		Completed: m.checkpointOf(pi), Partial: m.partialStats(),
	}
}

// scanStalled gathers, into m.wdCulprits, every core that owes
// instructions yet shows no sign of forward progress at this beat:
// a busy compute engine that will never finish, a post-setup DMA
// moving zero bytes, or an idle engine whose issuable queue head was
// skipped by issue. None of these states occur on a healthy core at
// beat time (issue has already run), so the scan cannot false-positive
// on cores that are merely waiting for dependencies or barriers.
func (m *machine) scanStalled() {
	m.wdCulprits = m.wdCulprits[:0]
	for c := 0; c < m.ncores; c++ {
		if m.pending[c] <= 0 {
			continue
		}
		if m.coreStalled(c) {
			m.wdCulprits = append(m.wdCulprits, c)
		}
	}
}

func (m *machine) coreStalled(c int) bool {
	for e := 0; e < numEngines; e++ {
		ei := c*numEngines + e
		if nid := m.busyN[ei]; nid >= 0 {
			n := &m.nodes[nid]
			switch plan.Engine(e) {
			case plan.EngineCompute:
				if math.IsInf(n.finish, 1) {
					return true
				}
			case plan.EngineLoad, plan.EngineStore:
				if n.setupUntil <= m.now+eps && m.speedOf(c) == 0 {
					return true
				}
			}
			continue
		}
		if m.qPos[ei] < m.qOff[ei+1] && m.nodes[m.qBuf[m.qPos[ei]]].deps == 0 {
			return true
		}
	}
	return false
}

// hangDetected snapshots the run state into a typed HangDetected for
// the culprits found by scanStalled.
func (m *machine) hangDetected() *HangDetected {
	pi := int(m.owner[m.wdCulprits[0]])
	return &HangDetected{
		Cores: append([]int(nil), m.wdCulprits...), Placement: pi, AtCycle: m.now,
		Completed: m.checkpointOf(pi), Partial: m.partialStats(),
	}
}

// hungPending lists cores that are hung while still owing
// instructions, for the deadlock diagnostic.
func (m *machine) hungPending() []int {
	if m.fs == nil {
		return nil
	}
	var out []int
	for c := 0; c < m.ncores; c++ {
		if m.fs.hung[c] && m.pending[c] > 0 {
			out = append(out, c)
		}
	}
	return out
}

// insertionSortByKey sorts the few due events of one step into the
// reference's processing order without allocating.
func insertionSortByKey(s []int32, key func(int32) int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && key(s[j]) < key(s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func resizeNodes(s []node, n int) []node {
	if cap(s) < n {
		return make([]node, n)
	}
	return s[:n]
}

func resizeInt(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func resizeBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = false
	}
	return s
}

func resizeFloat64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func resizeInt32Fill(s []int32, n int, v int32) []int32 {
	if cap(s) < n {
		s = make([]int32, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = v
	}
	return s
}

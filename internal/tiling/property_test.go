package tiling

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/partition"
	"repro/internal/tensor"
)

// Property: for random convolution geometries and random SPM budgets,
// every tiling plan that succeeds covers its sub-layer exactly with
// non-overlapping tiles, keeps each tile's input inside the input
// tensor, and carries a consistent kernel accounting (one slice per
// group, group slices summing to the sub-layer kernel).
func TestTilingGridProperties(t *testing.T) {
	f := func(hRaw, cRaw, outCRaw, spmRaw, kSel uint8) bool {
		h := int(hRaw%96) + 8
		c := int(cRaw%48) + 1
		outC := (int(outCRaw%32) + 1) * 4
		k := []int{1, 3, 5}[int(kSel)%3]
		pad := k / 2

		g := graph.New("q", tensor.Int8)
		in := g.Input("input", tensor.NewShape(h, h, c))
		id, err := g.Add("conv", ops.NewConv2D(k, k, 1, 1, outC,
			ops.Padding{Top: pad, Bottom: pad, Left: pad, Right: pad}), in)
		if err != nil {
			return true
		}
		l := g.Layer(id)

		a := arch.Exynos2100Like()
		spm := int64(128<<10) << (spmRaw % 5) // 128KB .. 2MB
		for i := range a.Cores {
			a.Cores[i].SPMBytes = spm
		}
		plans := partition.New(g, a).PlanAll()
		tiler := New(a)
		inShapes := g.InShapes(l)
		inWhole := tensor.WholeRegion(inShapes[0])

		for core, sub := range plans[id].Subs {
			if sub.Empty() {
				continue
			}
			tp, err := tiler.PlanSubLayer(l, inShapes, sub, core, Options{Direction: plans[id].Direction})
			if err != nil {
				continue // SPM too small at this geometry: allowed
			}
			if Validate(&tp, sub) != nil {
				return false
			}
			groupKernels := map[int]int64{}
			for _, tile := range tp.Tiles {
				if !inWhole.Contains(tile.In[0]) {
					return false
				}
				if tile.MACs <= 0 {
					return false
				}
				if prev, ok := groupKernels[tile.CGroup]; ok && prev != tile.KernelBytes {
					return false // tiles of one group disagree on the slice
				}
				groupKernels[tile.CGroup] = tile.KernelBytes
			}
			var sum int64
			for _, kb := range groupKernels {
				sum += kb
			}
			if sum != sub.KernelBytes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

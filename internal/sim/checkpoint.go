package sim

import (
	"repro/internal/graph"
	"repro/internal/plan"
)

// CutAtCycle computes a recovery checkpoint post-hoc from a collected
// trace: the longest safe prefix (same cut rule as CoreFailure.Completed
// — every prefix layer finished all its instructions by the cut, and
// every prefix output consumed outside the prefix was stored to global
// memory) considering only events on the given global cores with
// End <= cut. This is how a scheduler preempts a running placement at a
// stratum boundary without engine support: simulate with CollectTrace,
// pick the cut cycle, and resume the suffix from the returned layers.
//
// cores must be the placement's global core set (the cores its trace
// events carry); p is that placement's program. The returned layer IDs
// are in p.Graph's coordinates, ready for recovery.SuffixGraph.
func CutAtCycle(p *plan.Program, cores []int, trace []Event, cut float64) []graph.LayerID {
	nl := p.Graph.Len()
	done := make([]int, nl)
	total := make([]int, nl)
	hasStore := make([]bool, nl)
	for _, stream := range p.Cores {
		for _, in := range stream {
			total[in.Layer]++
			// Only plan.Store reaches global memory; halo stores land in
			// a peer's SPM and are lost to a preempted placement exactly
			// like they are to a dead core.
			if in.Op == plan.Store {
				hasStore[in.Layer] = true
			}
		}
	}
	mine := make([]bool, 0, 8)
	for _, c := range cores {
		for c >= len(mine) {
			mine = append(mine, false)
		}
		mine[c] = true
	}
	for i := range trace {
		ev := &trace[i]
		if ev.Core >= len(mine) || !mine[ev.Core] {
			continue
		}
		if ev.End > cut+eps {
			continue
		}
		if int(ev.Layer) < nl {
			done[ev.Layer]++
		}
	}
	return checkpoint(p, done, total, hasStore)
}

package npu

import (
	"errors"
	"fmt"

	"repro/internal/fault"
	"repro/internal/recovery"
	"repro/internal/sim"
)

// Fault-tolerance aliases: inject deterministic faults into simulated
// runs and recover from core death onto the surviving cores.
type (
	// FaultPlan describes the faults injected into a run (DMA drops,
	// thermal throttles, core deaths); see ParseFaultSpec for the
	// command-line syntax.
	FaultPlan = fault.Plan
	// FaultThrottle is a sustained core slowdown from a given cycle.
	FaultThrottle = fault.Throttle
	// FaultDeath is a hard core failure at a given cycle.
	FaultDeath = fault.Death
	// FaultHang is a silent core stall from a given cycle: the core
	// stops retiring without any announcement, and only a watchdog
	// (Config.WatchdogCycles) turns it into a typed HangDetected.
	FaultHang = fault.Hang
	// FaultSlowdown is a silent throttle — invisible to the scheduler,
	// unlike FaultThrottle which models an announced DVFS step.
	FaultSlowdown = fault.Slowdown
	// CoreFailure is the typed error a fault-injected run returns when
	// a core becomes unusable; it carries the recovery checkpoint.
	CoreFailure = sim.CoreFailure
	// HangDetected is the typed error the watchdog raises when cores
	// with pending work silently stop making progress.
	HangDetected = sim.HangDetected
	// Corruption records one silently corrupted stratum, caught by the
	// stratum-boundary checksum.
	Corruption = sim.Corruption
	// RecoveryResult describes a completed degradation path: failures
	// handled, surviving cores, recompiled suffix, merged statistics.
	RecoveryResult = recovery.Result
)

// ParseFaultSpec parses the "drop=0.02,throttle=1@50000x0.5,
// kill=2@400000" command-line fault syntax; the seed drives the
// probabilistic drop decisions.
func ParseFaultSpec(spec string, seed uint64) (*FaultPlan, error) {
	return fault.ParseSpec(spec, seed)
}

// FaultReport is a Report whose run was subjected to a fault plan.
// When a core died, Stats merges the wasted attempts with the
// recovered rerun, and Recovery holds the degradation details.
type FaultReport struct {
	Report
	// Failures lists every core failure survived, in order. Empty when
	// the run completed without losing a core (drops and throttles may
	// still have slowed it — see Stats.PerCore Retries).
	Failures []*CoreFailure
	// Hangs lists every silent stall the watchdog caught and recovery
	// retired. Empty unless the run was watched (RunWithFaultsWatched)
	// and a hang fired mid-run.
	Hangs []*HangDetected
	// Corruptions lists the strata whose boundary checksums caught
	// flipped DMA payloads during the (final) run. The run still
	// completes; repair re-executes just these strata (see
	// recovery.StratumGraph).
	Corruptions []Corruption
	// Recovery is the degradation path taken, nil if no core was lost.
	Recovery *RecoveryResult
}

// Degraded reports whether the run lost at least one core — to an
// announced failure or a detected hang.
func (fr *FaultReport) Degraded() bool { return len(fr.Failures)+len(fr.Hangs) > 0 }

// RunWithFaults compiles g, simulates it under the fault plan, and —
// if a core dies — re-partitions the unexecuted suffix onto the
// surviving cores and resumes from the checkpoint, repeating on
// cascading failures. Recovery never changes numerics (see
// ValidateRecovery); it only costs latency, which the report's merged
// statistics account for, re-dispatch penalties included.
//
// Hangs in the plan are injected but not detected: without a watchdog
// a silent stall surfaces as a deadlock error. Use RunWithFaultsWatched
// to arm detection.
func RunWithFaults(g *Graph, a *Arch, opt Options, plan *FaultPlan) (*FaultReport, error) {
	return RunWithFaultsWatched(g, a, opt, plan, 0)
}

// RunWithFaultsWatched is RunWithFaults with a progress watchdog: every
// watchdogCycles simulated cycles, each core with pending work is
// checked for forward progress, and a silent stall becomes a typed
// HangDetected that recovery handles exactly like a core death (the
// hung cores are retired, the suffix re-runs on the survivors).
// watchdogCycles <= 0 disables the watchdog.
func RunWithFaultsWatched(g *Graph, a *Arch, opt Options, plan *FaultPlan, watchdogCycles float64) (*FaultReport, error) {
	res, err := Compile(g, a, opt)
	if err != nil {
		return nil, err
	}
	simCfg := sim.Config{Faults: plan, WatchdogCycles: watchdogCycles}
	out, err := sim.Run(res.Program, simCfg)
	if err == nil {
		return &FaultReport{
			Report:      Report{Stats: out.Stats, Arch: a, Config: opt.Name()},
			Corruptions: out.Corruptions,
		}, nil
	}
	var cf *CoreFailure
	var hd *HangDetected
	if !errors.As(err, &cf) && !errors.As(err, &hd) {
		return nil, err
	}
	rec, err := recovery.RecoverFrom(g, a, err, recovery.Options{Opt: opt, Sim: simCfg})
	if err != nil {
		return nil, fmt.Errorf("npu: run failed and could not recover: %w", err)
	}
	return &FaultReport{
		Report:      Report{Stats: rec.MergedStats(), Arch: a, Config: opt.Name()},
		Failures:    rec.Failures,
		Hangs:       rec.Hangs,
		Corruptions: rec.Final.Corruptions,
		Recovery:    rec,
	}, nil
}

// ValidateRecovery proves a recovered run reproduced the whole-graph
// reference bit-exactly. It is slow on full benchmark models; use
// small graphs.
func ValidateRecovery(g *Graph, r *RecoveryResult) error {
	return recovery.Validate(g, r)
}

// Package sim is a discrete-event simulator for compiled multicore-NPU
// programs. It models, per core, three in-order engines (DMA load,
// compute, DMA store) whose instructions overlap — the software
// pipeline — plus inter-core barriers with the architecture's
// synchronization cost and a shared global-memory bus with max–min
// fair bandwidth allocation among in-flight DMA transfers.
//
// This simulator substitutes for the paper's Exynos 2100 silicon: all
// compiler decisions are sensitive only to the structural parameters
// it models (compute rate, DMA bandwidth, bus ceiling, SPM capacity,
// barrier cost), so relative results keep their shape even though
// absolute cycle counts are synthetic.
//
// Two engines share this package: the production event-driven engine
// (engine.go — indexed min-heap event queue, ready-list issuance,
// incremental bus water-filling, pooled zero-allocation scratch) and
// the retained reference engine (reference.go — the original per-step
// rescanning implementation). Run and RunConcurrent use the event
// engine; RunReference exists for equivalence tests and A/B
// benchmarks, which hold the two bit-identical.
//
// The golden files pinning the engines (testdata/golden_cycles.json
// here, chrome_tinycnn.json under internal/trace) regenerate with:
//
//go:generate go run ../../cmd/npubench -regen-golden
package sim

import (
	"context"
	"sort"

	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/plan"
)

// Event is one executed instruction interval, for traces and Gantt
// rendering (Figure 12).
type Event struct {
	Core int
	// Index is the instruction's position within its core's stream
	// (placement-local), letting tools join events back to the program.
	Index int
	Op    plan.OpCode
	Layer graph.LayerID
	Tile  int
	Start float64 // cycles
	End   float64 // cycles
	// Retries counts how many times this instruction's DMA transfer
	// was dropped and re-issued before succeeding (fault injection).
	Retries int
	Note    string
}

// CoreStats aggregates one core's activity.
type CoreStats struct {
	ComputeBusy float64 // cycles the MAC array ran
	LoadBusy    float64 // cycles the load DMA ran
	StoreBusy   float64 // cycles the store DMA ran
	Idle        float64 // cycles with no engine active before finish
	SyncWait    float64 // cycles spent waiting at barriers
	BytesLoaded int64
	BytesStored int64
	MACs        int64
	// Retries counts injected DMA transfer drops that were re-issued
	// on this core (zero without fault injection).
	Retries int
	Finish  float64 // completion time of the core's last instruction
}

// Stats is the outcome of one simulated run.
type Stats struct {
	// TotalCycles is the end-to-end latency (max over cores).
	TotalCycles float64
	// PerCore has one entry per core of the (global) architecture.
	PerCore []CoreStats
	// Barriers is the number of barrier rendezvous executed.
	Barriers int
	// ProgramCycles is each placed program's completion time. A
	// single-program run has one entry equal to TotalCycles.
	ProgramCycles []float64
}

// LatencyMicros converts the latency using the program's clock. A
// zero or negative clock is meaningless; the contract is to return 0
// rather than let +Inf/NaN leak into reports.
func (s *Stats) LatencyMicros(clockMHz int) float64 {
	if clockMHz <= 0 {
		return 0
	}
	return s.TotalCycles / float64(clockMHz)
}

// TotalMACs sums compute over cores (redundant work included).
func (s *Stats) TotalMACs() int64 {
	var m int64
	for _, c := range s.PerCore {
		m += c.MACs
	}
	return m
}

// TotalBytes sums DMA traffic over cores.
func (s *Stats) TotalBytes() int64 {
	var b int64
	for _, c := range s.PerCore {
		b += c.BytesLoaded + c.BytesStored
	}
	return b
}

// EnergyMicroJoules estimates the inference energy from the
// architecture's per-MAC and per-DRAM-byte costs. Stratum construction
// trades DRAM energy for MAC energy; this metric quantifies the
// exchange. The dtype factor is folded into the recorded MAC counts'
// compute times, so INT16 models approximate with the INT8 MAC cost
// times two.
// Negative cost coefficients are meaningless and yield 0, matching
// the LatencyMicros contract.
func (s *Stats) EnergyMicroJoules(pjPerMAC, pjPerDRAMByte float64, int16Model bool) float64 {
	if pjPerMAC < 0 || pjPerDRAMByte < 0 {
		return 0
	}
	macPJ := pjPerMAC
	if int16Model {
		macPJ *= 2
	}
	return (float64(s.TotalMACs())*macPJ + float64(s.TotalBytes())*pjPerDRAMByte) / 1e6
}

// Result bundles stats with an optional trace and, under FlipRate
// fault injection, the corruptions detected at stratum boundaries.
type Result struct {
	Stats Stats
	Trace []Event
	// Corruptions lists every stratum whose boundary checksum caught
	// corrupted DMA bytes, in detection order (empty without FlipRate
	// faults; identical between both engines). The run completes —
	// silent corruption never stops execution — and the caller decides
	// whether to re-execute the affected strata.
	Corruptions []Corruption
}

// Config controls a simulation run.
type Config struct {
	// Ctx, when non-nil, is polled at cooperative checkpoints in both
	// engines' event loops; once it is done the run stops and returns a
	// *CanceledError (matching ErrCanceled and unwrapping to the
	// context's error). A nil Ctx costs one pointer compare per step.
	// Cancellation never perturbs an uncanceled run: with a live
	// context both engines stay bit-identical to a nil-context run.
	Ctx context.Context
	// CollectTrace records every instruction interval.
	CollectTrace bool
	// Faults injects deterministic faults (nil or empty: none). A run
	// that loses a core returns a *CoreFailure error carrying the
	// checkpoint recovery resumes from.
	Faults *fault.Plan
	// Hook observes the run for metrics collection (see the Hook doc
	// for the zero-overhead contract). Nil disables observation. Only
	// the event engine feeds hooks; the reference engine ignores this
	// field.
	Hook Hook
	// NoSPMCheck disables the SPM admission check (spmcheck.go). By
	// default both engines track live SPM bytes per core and fail the
	// run with a *SPMOverflowError when a core's footprint exceeds its
	// capacity; set this to simulate a knowingly over-budget schedule.
	NoSPMCheck bool
	// WatchdogCycles enables the hang watchdog: per-core progress is
	// checked every WatchdogCycles simulated cycles, and a core that
	// owes instructions but shows no forward progress fails the run
	// with a typed *HangDetected carrying the recovery checkpoint.
	// Zero disables the watchdog. It only arms when Faults is non-empty
	// (a fault-free run cannot stall), so it never perturbs clean runs.
	WatchdogCycles float64
}

const eps = 1e-6

// Placement assigns a compiled program to a subset of the global
// architecture's cores. Program core i runs on global core Cores[i];
// the program must have been compiled for an architecture whose core
// descriptors match (arch.Subset produces one).
type Placement struct {
	Program *plan.Program
	Cores   []int
}

// Run simulates a single program occupying the whole architecture. It
// returns an error on deadlock, which indicates a compiler bug
// (plan.Program.Validate catches static cycles; deadlock here would
// come from barrier misuse).
func Run(p *plan.Program, cfg Config) (*Result, error) {
	cores := make([]int, p.Arch.NumCores())
	for i := range cores {
		cores[i] = i
	}
	return RunConcurrent(p.Arch, []Placement{{Program: p, Cores: cores}}, cfg)
}

// jitter returns a deterministic pseudo-random barrier-release delay
// in [0, bound] cycles, keyed by barrier ID — the runtime's dynamic
// variance, reproducible across runs.
func jitter(barrierID int, bound int64) float64 {
	if bound <= 0 {
		return 0
	}
	h := uint64(barrierID+1) * 0x9e3779b97f4a7c15
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return float64(h % uint64(bound+1))
}

// unionLength merges intervals and returns their covered length.
func unionLength(iv [][2]float64) float64 {
	if len(iv) == 0 {
		return 0
	}
	sort.Slice(iv, func(i, j int) bool { return iv[i][0] < iv[j][0] })
	total := 0.0
	curLo, curHi := iv[0][0], iv[0][1]
	for _, x := range iv[1:] {
		if x[0] > curHi {
			total += curHi - curLo
			curLo, curHi = x[0], x[1]
		} else if x[1] > curHi {
			curHi = x[1]
		}
	}
	return total + (curHi - curLo)
}

// Package stratum implements the paper's Algorithm 2: stratum
// construction. A stratum is a chain of consecutively scheduled,
// directly connected, spatially partitioned layers that every core
// executes locally with no inter-core synchronization and no
// intermediate global-memory traffic. The price is redundant halo
// computation that grows toward the top (earliest) layer of the
// stratum; heuristic h8 stops accumulation when the redundancy
// outweighs the synchronization saved.
package stratum

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/tensor"
)

// Stratum is a chain of layers executed without synchronization.
// Layers appear in execution order (top of the chain first).
type Stratum struct {
	// Layers in execution order; a singleton stratum is a layer that
	// could not merge with its neighbours and synchronizes normally.
	Layers []graph.LayerID
	// Expanded maps each layer to its per-core output regions
	// *including* the redundant halo needed by the next layer in the
	// stratum. For the last layer the expanded region equals the
	// partition plan's region.
	Expanded map[graph.LayerID][]tensor.Region
	// RedundantMACs is the total extra compute across all cores and
	// layers versus the plain partition plan.
	RedundantMACs int64
}

// Len returns the number of layers in the stratum.
func (s *Stratum) Len() int { return len(s.Layers) }

// Boundary tunes stratum accumulation at one layer, generalizing the
// fixed h8 cutoff into a per-layer knob the design-space explorer can
// search over. The structural legality rules h6 (single-user direct
// edge) and h7 (matching spatial partitioning) always hold — they are
// what makes a stratum synchronization-free — but whether a legal
// merge is *worth* it becomes tunable.
type Boundary int8

// Per-layer stratum boundary policies.
const (
	// BoundaryAuto applies the paper's cost cutoff h8: merge only when
	// the redundant compute undercuts the synchronization saved.
	BoundaryAuto Boundary = iota
	// BoundaryBreak forces a stratum boundary: the layer never merges
	// into its successor's stratum, regardless of h8.
	BoundaryBreak
	// BoundaryFuse merges the layer into its successor's stratum
	// whenever h6/h7 legality holds, skipping the h8 cost cutoff (the
	// SPM capacity chain still trims strata that do not fit).
	BoundaryFuse
)

// String returns a short policy label.
func (b Boundary) String() string {
	switch b {
	case BoundaryAuto:
		return "auto"
	case BoundaryBreak:
		return "break"
	case BoundaryFuse:
		return "fuse"
	default:
		return fmt.Sprintf("Boundary(%d)", int8(b))
	}
}

// Singleton reports whether the stratum holds a single layer (no
// synchronization was eliminated).
func (s *Stratum) Singleton() bool { return len(s.Layers) == 1 }

// Builder constructs strata over a scheduled, partitioned graph.
type Builder struct {
	Graph *graph.Graph
	Arch  *arch.Arch
	Model *cost.Model
	// Plans is indexed by LayerID (from partition.Partitioner.PlanAll).
	Plans []partition.Plan
	// Order is the execution schedule (Algorithm 1's output),
	// including graph inputs, which are skipped.
	Order []graph.LayerID
	// MaxLayers caps how many layers one stratum may accumulate
	// (0 = unlimited). The compile driver's fallback chain lowers it
	// when deep strata overrun SPM: shallower strata hold fewer
	// forwarded feature maps resident at once.
	MaxLayers int
	// Boundary optionally overrides the h8 cutoff per layer, indexed
	// by LayerID (see Boundary). Nil, short slices, and BoundaryAuto
	// entries keep the paper's behavior. Boundary applies to the edge
	// from the indexed layer to its (single) successor.
	Boundary []Boundary
}

// boundary returns the policy for the edge from layer id to its
// successor.
func (b *Builder) boundary(id graph.LayerID) Boundary {
	if int(id) < len(b.Boundary) {
		return b.Boundary[id]
	}
	return BoundaryAuto
}

// New returns a Builder.
func New(g *graph.Graph, a *arch.Arch, plans []partition.Plan, order []graph.LayerID) *Builder {
	return &Builder{Graph: g, Arch: a, Model: cost.New(a), Plans: plans, Order: order}
}

// Build walks the schedule in reverse (Algorithm 2), accumulating
// layers into the current stratum while heuristics h6–h8 hold, and
// returns the strata in execution order, covering every non-input
// layer exactly once.
func (b *Builder) Build() []Stratum {
	// Executable layers in schedule order.
	var exec []graph.LayerID
	for _, id := range b.Order {
		if !b.Graph.Layer(id).IsInput() {
			exec = append(exec, id)
		}
	}
	if len(exec) == 0 {
		return nil
	}

	var strata []Stratum
	// cur accumulates layers in execution order, built backward: the
	// base (bottom) layer is the last element.
	last := exec[len(exec)-1]
	cur := Stratum{
		Layers:   []graph.LayerID{last},
		Expanded: map[graph.LayerID][]tensor.Region{last: b.plannedRegions(last)},
	}
	prev := last

	flush := func() {
		strata = append([]Stratum{cur}, strata...)
	}

	for i := len(exec) - 2; i >= 0; i-- {
		curr := exec[i]
		if b.MaxLayers <= 0 || len(cur.Layers) < b.MaxLayers {
			if ok, expanded, redundant := b.tryAccumulate(curr, prev, &cur); ok {
				cur.Layers = append([]graph.LayerID{curr}, cur.Layers...)
				cur.Expanded[curr] = expanded
				cur.RedundantMACs += redundant
				prev = curr
				continue
			}
		}
		// Stop accumulating: emit the current stratum and restart with
		// curr as the new base.
		flush()
		cur = Stratum{
			Layers:   []graph.LayerID{curr},
			Expanded: map[graph.LayerID][]tensor.Region{curr: b.plannedRegions(curr)},
		}
		prev = curr
	}
	flush()
	return strata
}

// plannedRegions returns the per-core output regions of a layer's
// partition plan (no halo expansion).
func (b *Builder) plannedRegions(id graph.LayerID) []tensor.Region {
	plan := &b.Plans[id]
	regions := make([]tensor.Region, len(plan.Subs))
	for i, s := range plan.Subs {
		regions[i] = s.Out
	}
	return regions
}

// tryAccumulate evaluates h6–h8 for appending curr below the top of
// the current stratum (whose top layer is prevTop, the layer scheduled
// immediately after curr). On success it returns curr's expanded
// per-core output regions and the redundant MACs they introduce.
func (b *Builder) tryAccumulate(curr, prevTop graph.LayerID, cur *Stratum) (bool, []tensor.Region, int64) {
	g := b.Graph
	lCurr := g.Layer(curr)
	lPrev := g.Layer(prevTop)

	// Per-layer boundary override: a forced break refuses the merge
	// outright; legality (h6/h7) is still required below either way.
	if b.boundary(curr) == BoundaryBreak {
		return false, nil, 0
	}

	// h6 (immediate successor): prevTop must consume curr directly and
	// be its only user, and curr must be prevTop's only data input —
	// otherwise some tensor still needs a global-memory round trip and
	// the synchronization cannot be removed.
	if len(g.Users(curr)) != 1 || g.Users(curr)[0] != prevTop {
		return false, nil, 0
	}
	if len(lPrev.Inputs) != 1 {
		return false, nil, 0
	}

	// h7 (partitioning directions match): both layers spatial along
	// the same axis. Channel-partitioned layers need the whole input
	// on every core, which defeats local accumulation.
	pCurr := &b.Plans[curr]
	pPrev := &b.Plans[prevTop]
	if !pCurr.Direction.Spatial() || pCurr.Direction != pPrev.Direction {
		return false, nil, 0
	}

	// Expand curr's output to cover the halo the (already expanded)
	// prevTop regions require.
	prevExp := cur.Expanded[prevTop]
	inShapes := g.InShapes(lPrev)
	expanded := make([]tensor.Region, len(pCurr.Subs))
	var redundant int64
	var maxExtraPerCore int64
	for i, s := range pCurr.Subs {
		own := s.Out
		if prevExp[i].Empty() {
			expanded[i] = own
			continue
		}
		need := lPrev.Op.InputRegion(prevExp[i], 0, inShapes)
		exp := boundingBox(own, need)
		// A core that had no work may now need some (pure redundancy).
		expanded[i] = exp
		extra := lCurr.Op.MACs(exp.Ext, g.InShapes(lCurr)) - s.MACs
		if extra < 0 {
			extra = 0
		}
		redundant += extra
		if extra > maxExtraPerCore {
			maxExtraPerCore = extra
		}
	}

	// h8 (redundant computation is cheap): the extra compute on the
	// slowest-hit core must undercut the barrier this merge removes.
	// A BoundaryFuse override skips the cutoff: the merge is legal, so
	// let the capacity chain (TrimToFit, the SPM fallback rungs) be
	// the only brake.
	if b.boundary(curr) != BoundaryFuse {
		worst := int64(0)
		for i := range expanded {
			extra := lCurr.Op.MACs(expanded[i].Ext, g.InShapes(lCurr)) - pCurr.Subs[i].MACs
			if extra < 0 {
				extra = 0
			}
			c := b.Model.ComputeCycles(i, extra, lCurr.DType)
			if c > worst {
				worst = c
			}
		}
		if worst >= b.Model.SyncCycles(b.Arch.NumCores()) {
			return false, nil, 0
		}
	}
	return true, expanded, redundant
}

// boundingBox returns the smallest region containing both a and b.
// Empty operands are ignored.
func boundingBox(a, b tensor.Region) tensor.Region {
	if a.Empty() {
		return b
	}
	if b.Empty() {
		return a
	}
	var out tensor.Region
	for _, ax := range []tensor.Axis{tensor.AxisH, tensor.AxisW, tensor.AxisC} {
		lo := a.Off.Dim(ax)
		if v := b.Off.Dim(ax); v < lo {
			lo = v
		}
		hi := a.End(ax)
		if v := b.End(ax); v > hi {
			hi = v
		}
		out.Off = out.Off.WithDim(ax, lo)
		out.Ext = out.Ext.WithDim(ax, hi-lo)
	}
	return out
}

// SPMNeed returns the peak SPM bytes core needs to execute the stratum
// with feature-map forwarding: for each layer, the forwarded input
// region plus the kernel slice plus the produced (expanded) output
// region must be resident simultaneously.
func (b *Builder) SPMNeed(s *Stratum, core int) int64 {
	g := b.Graph
	var peak int64
	for _, id := range s.Layers {
		l := g.Layer(id)
		exp := s.Expanded[id][core]
		if exp.Empty() {
			continue
		}
		inShapes := g.InShapes(l)
		var need int64
		for i := range inShapes {
			need += l.Op.InputRegion(exp, i, inShapes).Bytes(l.DType)
		}
		need += l.Op.KernelBytes(exp.Ext, inShapes, l.DType)
		need += exp.Bytes(l.DType)
		if need > peak {
			peak = need
		}
	}
	return peak
}

// TrimToFit removes layers from the top of the stratum until every
// core's SPM requirement fits (the paper's final compilation step when
// tiling cannot reduce memory enough). Removed layers are returned as
// singleton strata, in execution order, followed by the trimmed
// remainder. The input stratum is not modified.
func (b *Builder) TrimToFit(s *Stratum) []Stratum {
	work := Stratum{
		Layers:   append([]graph.LayerID(nil), s.Layers...),
		Expanded: make(map[graph.LayerID][]tensor.Region, len(s.Expanded)),
	}
	for k, v := range s.Expanded {
		work.Expanded[k] = v
	}
	work.RedundantMACs = s.RedundantMACs

	var out []Stratum
	for work.Len() > 1 {
		fits := true
		for core := range b.Arch.Cores {
			if b.SPMNeed(&work, core) > b.Arch.Cores[core].SPMBytes {
				fits = false
				break
			}
		}
		if fits {
			break
		}
		top := work.Layers[0]
		work.Layers = work.Layers[1:]
		delete(work.Expanded, top)
		out = append(out, Stratum{
			Layers:   []graph.LayerID{top},
			Expanded: map[graph.LayerID][]tensor.Region{top: b.plannedRegions(top)},
		})
	}
	// Recompute redundancy for the trimmed remainder.
	work.RedundantMACs = b.redundancy(&work)
	return append(out, work)
}

// redundancy recomputes the total redundant MACs of a stratum against
// the partition plans.
func (b *Builder) redundancy(s *Stratum) int64 {
	var total int64
	for _, id := range s.Layers {
		l := b.Graph.Layer(id)
		in := b.Graph.InShapes(l)
		for core, exp := range s.Expanded[id] {
			extra := l.Op.MACs(exp.Ext, in) - b.Plans[id].Subs[core].MACs
			if extra > 0 {
				total += extra
			}
		}
	}
	return total
}

// Validate checks stratum invariants: layers contiguous in the
// schedule, expanded regions contain the planned regions, and chains
// are connected.
func (b *Builder) Validate(strata []Stratum) error {
	seen := make(map[graph.LayerID]bool)
	for si, s := range strata {
		if s.Len() == 0 {
			return fmt.Errorf("stratum %d: empty", si)
		}
		for li, id := range s.Layers {
			if seen[id] {
				return fmt.Errorf("stratum %d: layer %d appears in multiple strata", si, id)
			}
			seen[id] = true
			exp := s.Expanded[id]
			if len(exp) != len(b.Plans[id].Subs) {
				return fmt.Errorf("stratum %d: layer %d has %d expanded regions, want %d",
					si, id, len(exp), len(b.Plans[id].Subs))
			}
			for core, r := range exp {
				own := b.Plans[id].Subs[core].Out
				if !own.Empty() && !r.Contains(own) {
					return fmt.Errorf("stratum %d: layer %d core %d expanded %v loses planned %v",
						si, id, core, r, own)
				}
			}
			if li > 0 {
				prev := s.Layers[li-1]
				users := b.Graph.Users(prev)
				if len(users) != 1 || users[0] != id {
					return fmt.Errorf("stratum %d: %d -> %d not a direct single-user edge", si, prev, id)
				}
			}
		}
	}
	for _, l := range b.Graph.Layers() {
		if !l.IsInput() && !seen[l.ID] {
			return fmt.Errorf("layer %d not covered by any stratum", l.ID)
		}
	}
	return nil
}

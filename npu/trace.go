package npu

import (
	"io"

	"repro/internal/trace"
)

// WriteGantt renders a report's trace as a fixed-width text timeline
// (one row per core and engine), columns wide.
func (r *Report) WriteGantt(w io.Writer, columns int) error {
	return trace.Gantt(w, r.Trace, r.Arch, columns)
}

// WriteChromeTrace serializes the report's trace in Chrome trace-event
// JSON, viewable in chrome://tracing or Perfetto.
func (r *Report) WriteChromeTrace(w io.Writer) error {
	return trace.WriteChrome(w, r.Trace, r.Arch)
}

// EngineSummary returns per-core engine busy times as text.
func (r *Report) EngineSummary() string {
	return trace.Summary(r.Trace, r.Arch)
}

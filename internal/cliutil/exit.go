package cliutil

import (
	"context"
	"errors"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/tiling"
)

// Process exit codes shared by the command-line tools. Scripts and CI
// gates branch on these, so each typed failure class gets a stable
// number; everything unclassified is the generic 1.
const (
	// ExitOK: success.
	ExitOK = 0
	// ExitError: unclassified failure (I/O, invalid flags caught late,
	// simulator deadlock, ...).
	ExitError = 1
	// ExitUsage: bad command-line usage (the flag package's own code).
	ExitUsage = 2
	// ExitUnfit: the compiler exhausted its graceful-degradation chain
	// without finding a schedule that fits SPM (core.UnfitError).
	// Deterministic for a given (model, arch, config) — retrying the
	// same invocation cannot succeed.
	ExitUnfit = 3
	// ExitSPMOverflow: simulated live SPM bytes overflowed a core's
	// capacity under -strict-spm (sim.SPMOverflowError).
	ExitSPMOverflow = 4
	// ExitCannotFit: a single layer's minimal tile exceeds the SPM
	// budget (tiling.CannotFitError).
	ExitCannotFit = 5
	// ExitCoreFailure: an injected fault killed a core and the run
	// could not be recovered (sim.CoreFailure).
	ExitCoreFailure = 6
	// ExitCanceled: the run was canceled or timed out (context
	// cancellation, sim.ErrCanceled).
	ExitCanceled = 7
	// ExitHangDetected: the watchdog caught a silently hung core and
	// the run could not be recovered (sim.HangDetected).
	ExitHangDetected = 8
	// ExitBadFaultSpec: the fault plan referenced a core the platform
	// does not have (fault.CoreRangeError) — a spec bug, not a run
	// failure; retrying the same invocation cannot succeed.
	ExitBadFaultSpec = 9
)

// ExitCode maps an error to the process exit code documented above.
// More specific classes win: a CannotFitError wrapped inside an
// UnfitError reports ExitUnfit, because the fallback chain (not the
// single layer) is what failed.
func ExitCode(err error) int {
	if err == nil {
		return ExitOK
	}
	var unfit *core.UnfitError
	if errors.As(err, &unfit) {
		return ExitUnfit
	}
	var overflow *sim.SPMOverflowError
	if errors.As(err, &overflow) {
		return ExitSPMOverflow
	}
	var cannot *tiling.CannotFitError
	if errors.As(err, &cannot) {
		return ExitCannotFit
	}
	var cf *sim.CoreFailure
	if errors.As(err, &cf) {
		return ExitCoreFailure
	}
	var hd *sim.HangDetected
	if errors.As(err, &hd) {
		return ExitHangDetected
	}
	var cr *fault.CoreRangeError
	if errors.As(err, &cr) {
		return ExitBadFaultSpec
	}
	if errors.Is(err, sim.ErrCanceled) || errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) {
		return ExitCanceled
	}
	return ExitError
}

// ExitCodeDoc is the exit-code table for the tools' -help output.
const ExitCodeDoc = `Exit codes:
  0  success
  1  unclassified error
  2  bad command-line usage
  3  schedule cannot fit SPM after all fallbacks (unfit)
  4  simulated SPM overflow under -strict-spm
  5  a single layer's minimal tile exceeds SPM
  6  core failure (injected fault, unrecovered)
  7  canceled or deadline exceeded
  8  silent hang detected by the watchdog (unrecovered)
  9  fault spec references a core the platform does not have
`

package ops

import (
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func shape(h, w, c int) tensor.Shape { return tensor.NewShape(h, w, c) }

func mustOut(t *testing.T, op Op, in ...tensor.Shape) tensor.Shape {
	t.Helper()
	out, err := op.OutShape(in)
	if err != nil {
		t.Fatalf("%v.OutShape(%v): %v", op, in, err)
	}
	return out
}

func TestSamePad(t *testing.T) {
	// 299x299 s2 k3 "valid-ish" check via SAME: out = ceil(299/2) = 150.
	in := shape(299, 299, 3)
	pad := SamePad(in, 3, 3, 2, 2, 1, 1)
	conv := NewConv2D(3, 3, 2, 2, 32, pad)
	out := mustOut(t, conv, in)
	if out.H != 150 || out.W != 150 || out.C != 32 {
		t.Errorf("SAME conv out = %v, want 150x150x32", out)
	}
	// Stride 1: SAME preserves extent.
	pad1 := SamePad(in, 3, 3, 1, 1, 1, 1)
	out1 := mustOut(t, NewConv2D(3, 3, 1, 1, 8, pad1), in)
	if out1.H != 299 || out1.W != 299 {
		t.Errorf("SAME s1 out = %v, want 299x299", out1)
	}
}

func TestConvValidPadding(t *testing.T) {
	// InceptionV3 stem: 299x299x3 -> conv 3x3 s2 valid -> 149x149x32.
	conv := NewConv2D(3, 3, 2, 2, 32, Padding{})
	out := mustOut(t, conv, shape(299, 299, 3))
	if out != shape(149, 149, 32) {
		t.Errorf("out = %v, want 149x149x32", out)
	}
}

func TestConvOutShapeError(t *testing.T) {
	conv := NewConv2D(7, 7, 1, 1, 8, Padding{})
	if _, err := conv.OutShape([]tensor.Shape{shape(3, 3, 4)}); err == nil {
		t.Error("expected error: kernel larger than input")
	}
	if _, err := conv.OutShape(nil); err == nil {
		t.Error("expected arity error")
	}
}

func TestConvMACsAndKernel(t *testing.T) {
	conv := NewConv2D(3, 3, 1, 1, 16, Padding{})
	in := []tensor.Shape{shape(10, 10, 8)}
	out := mustOut(t, conv, in[0])
	wantMACs := out.Elems() * 3 * 3 * 8
	if got := conv.MACs(out, in); got != wantMACs {
		t.Errorf("MACs = %d, want %d", got, wantMACs)
	}
	// Full kernel: 3*3*8 weights + int32 bias per output channel.
	wantK := int64(16) * (3*3*8*1 + 4)
	if got := conv.KernelBytes(out, in, tensor.Int8); got != wantK {
		t.Errorf("KernelBytes = %d, want %d", got, wantK)
	}
	// Channel-partitioned extent takes half the kernel.
	half := out.WithDim(tensor.AxisC, 8)
	if got := conv.KernelBytes(half, in, tensor.Int8); got != wantK/2 {
		t.Errorf("half KernelBytes = %d, want %d", got, wantK/2)
	}
}

func TestConvInputRegionInterior(t *testing.T) {
	conv := NewConv2D(3, 3, 1, 1, 4, Padding{Top: 1, Bottom: 1, Left: 1, Right: 1})
	in := []tensor.Shape{shape(16, 16, 8)}
	out := tensor.Region{Off: shape(4, 4, 0), Ext: shape(4, 4, 4)}
	r := conv.InputRegion(out, 0, in)
	// rows 4..7 with pad 1 need input rows 3..8 (halo of 1 each side).
	if r.Off.H != 3 || r.Ext.H != 6 || r.Off.W != 3 || r.Ext.W != 6 {
		t.Errorf("InputRegion = %v, want [3:9,3:9,...]", r)
	}
	if r.Off.C != 0 || r.Ext.C != 8 {
		t.Errorf("conv must read all input channels, got %v", r)
	}
}

func TestConvInputRegionBorderClamps(t *testing.T) {
	conv := NewConv2D(3, 3, 1, 1, 4, Padding{Top: 1, Bottom: 1, Left: 1, Right: 1})
	in := []tensor.Shape{shape(16, 16, 8)}
	out := tensor.Region{Off: shape(0, 0, 0), Ext: shape(4, 16, 4)}
	r := conv.InputRegion(out, 0, in)
	// Top rows use zero padding, not halo: clamped at 0.
	if r.Off.H != 0 || r.Ext.H != 5 {
		t.Errorf("border InputRegion H = [%d,+%d], want [0,+5]", r.Off.H, r.Ext.H)
	}
}

func TestConvStrideDilationRegion(t *testing.T) {
	conv := Conv2D{KH: 3, KW: 3, StrideH: 2, StrideW: 2, DilH: 2, DilW: 2, OutC: 4}
	in := []tensor.Shape{shape(32, 32, 4)}
	out := tensor.Region{Off: shape(2, 2, 0), Ext: shape(2, 2, 4)}
	r := conv.InputRegion(out, 0, in)
	// i0 = 2*2 = 4; i1 = 3*2 + (3-1)*2 + 1 = 11.
	if r.Off.H != 4 || r.Ext.H != 7 {
		t.Errorf("strided/dilated region H = [%d,+%d], want [4,+7]", r.Off.H, r.Ext.H)
	}
}

func TestDepthwiseConv(t *testing.T) {
	dw := NewDepthwiseConv2D(3, 3, 1, 1, Padding{Top: 1, Bottom: 1, Left: 1, Right: 1})
	in := []tensor.Shape{shape(14, 14, 32)}
	out := mustOut(t, dw, in[0])
	if out != shape(14, 14, 32) {
		t.Errorf("out = %v", out)
	}
	if !dw.ChannelWise() {
		t.Error("depthwise must be channel-wise (h4)")
	}
	// Channel slice of output needs only the same channel slice of input.
	reg := tensor.Region{Off: shape(0, 0, 8), Ext: shape(14, 14, 8)}
	r := dw.InputRegion(reg, 0, in)
	if r.Off.C != 8 || r.Ext.C != 8 {
		t.Errorf("depthwise channel slice = %v", r)
	}
	if got := dw.MACs(out, in); got != out.Elems()*9 {
		t.Errorf("MACs = %d", got)
	}
}

func TestTransposeConvShape(t *testing.T) {
	// UNet up-conv: 2x2 stride 2 doubles the extent.
	up := TransposeConv2D{KH: 2, KW: 2, StrideH: 2, StrideW: 2, OutC: 64}
	out := mustOut(t, up, shape(28, 28, 128))
	if out != shape(56, 56, 64) {
		t.Errorf("out = %v, want 56x56x64", out)
	}
}

func TestTransposeConvInputRegion(t *testing.T) {
	up := TransposeConv2D{KH: 2, KW: 2, StrideH: 2, StrideW: 2, OutC: 8}
	in := []tensor.Shape{shape(10, 10, 4)}
	out := tensor.Region{Off: shape(4, 4, 0), Ext: shape(4, 4, 8)}
	r := up.InputRegion(out, 0, in)
	// Output rows 4..7 come from input rows 2..3 exactly (k=s=2).
	if r.Off.H != 2 || r.Ext.H != 2 {
		t.Errorf("region H = [%d,+%d], want [2,+2]", r.Off.H, r.Ext.H)
	}
	if r.Ext.C != 4 {
		t.Errorf("transpose conv must read all input channels: %v", r)
	}
}

func TestPooling(t *testing.T) {
	mp := MaxPool2D{KH: 3, KW: 3, StrideH: 2, StrideW: 2}
	out := mustOut(t, mp, shape(147, 147, 64))
	if out != shape(73, 73, 64) {
		t.Errorf("maxpool out = %v, want 73x73x64", out)
	}
	if !mp.ChannelWise() {
		t.Error("pooling must be channel-wise")
	}
	ap := AvgPool2D{KH: 2, KW: 2, StrideH: 2, StrideW: 2}
	out2 := mustOut(t, ap, shape(10, 10, 8))
	if out2 != shape(5, 5, 8) {
		t.Errorf("avgpool out = %v", out2)
	}
	if mp.KernelBytes(out, []tensor.Shape{shape(147, 147, 64)}, tensor.Int8) != 0 {
		t.Error("pooling has no kernel")
	}
}

func TestGlobalAvgPool(t *testing.T) {
	g := GlobalAvgPool{}
	in := []tensor.Shape{shape(8, 8, 2048)}
	out := mustOut(t, g, in[0])
	if out != shape(1, 1, 2048) {
		t.Errorf("out = %v", out)
	}
	if g.SupportsPartition(tensor.AxisH) || g.SupportsPartition(tensor.AxisW) {
		t.Error("global pool must not support spatial partition (partial sums)")
	}
	if !g.SupportsPartition(tensor.AxisC) {
		t.Error("global pool must support channel partition")
	}
	reg := tensor.Region{Off: shape(0, 0, 100), Ext: shape(1, 1, 50)}
	r := g.InputRegion(reg, 0, in)
	if r.Ext.H != 8 || r.Ext.W != 8 || r.Off.C != 100 || r.Ext.C != 50 {
		t.Errorf("global pool region = %v", r)
	}
}

func TestFullyConnected(t *testing.T) {
	fc := FullyConnected{OutC: 1000}
	out := mustOut(t, fc, shape(1, 1, 2048))
	if out != shape(1, 1, 1000) {
		t.Errorf("out = %v", out)
	}
	if _, err := fc.OutShape([]tensor.Shape{shape(2, 2, 64)}); err == nil {
		t.Error("FC must reject non-1x1 input")
	}
	if fc.SupportsPartition(tensor.AxisH) {
		t.Error("FC has no spatial parallelism")
	}
	if got := fc.MACs(shape(1, 1, 500), []tensor.Shape{shape(1, 1, 2048)}); got != 500*2048 {
		t.Errorf("MACs = %d", got)
	}
}

func TestAddMulShapes(t *testing.T) {
	add := Add{Arity: 2}
	out := mustOut(t, add, shape(14, 14, 96), shape(14, 14, 96))
	if out != shape(14, 14, 96) {
		t.Errorf("out = %v", out)
	}
	if _, err := add.OutShape([]tensor.Shape{shape(14, 14, 96), shape(14, 14, 48)}); err == nil {
		t.Error("Add must reject mismatched shapes")
	}
	mul := Mul{}
	if _, err := mul.OutShape([]tensor.Shape{shape(14, 14, 96), shape(1, 1, 96)}); err != nil {
		t.Errorf("Mul broadcast rejected: %v", err)
	}
	if _, err := mul.OutShape([]tensor.Shape{shape(14, 14, 96), shape(7, 7, 96)}); err == nil {
		t.Error("Mul must reject incompatible shapes")
	}
	r := mul.InputRegion(tensor.Region{Off: shape(3, 3, 8), Ext: shape(2, 2, 4)}, 1,
		[]tensor.Shape{shape(14, 14, 96), shape(1, 1, 96)})
	if r.Ext.H != 1 || r.Ext.W != 1 || r.Off.C != 8 || r.Ext.C != 4 {
		t.Errorf("broadcast region = %v", r)
	}
}

func TestConcat(t *testing.T) {
	cat := Concat{Arity: 3}
	in := []tensor.Shape{shape(35, 35, 64), shape(35, 35, 64), shape(35, 35, 96)}
	out := mustOut(t, cat, in...)
	if out != shape(35, 35, 224) {
		t.Errorf("out = %v, want 35x35x224", out)
	}
	// Output channels [100:200) intersect input1 ([64:128)) at its [36:64).
	reg := tensor.Region{Off: shape(0, 0, 100), Ext: shape(35, 35, 100)}
	r := cat.InputRegion(reg, 1, in)
	if r.Off.C != 36 || r.Ext.C != 28 {
		t.Errorf("concat input1 region C = [%d,+%d], want [36,+28]", r.Off.C, r.Ext.C)
	}
	// Input 0 is fully below the range start at channel 100? [0:64) vs [100:200): empty.
	r0 := cat.InputRegion(reg, 0, in)
	if !r0.Empty() {
		t.Errorf("concat input0 region should be empty, got %v", r0)
	}
	if _, err := cat.OutShape([]tensor.Shape{shape(3, 3, 1), shape(4, 4, 1), shape(3, 3, 1)}); err == nil {
		t.Error("Concat must reject mismatched spatial dims")
	}
}

func TestSoftmax(t *testing.T) {
	sm := Softmax{}
	in := []tensor.Shape{shape(10, 10, 21)}
	if sm.SupportsPartition(tensor.AxisC) {
		t.Error("softmax cannot channel-partition")
	}
	if !sm.SupportsPartition(tensor.AxisH) {
		t.Error("softmax must spatial-partition")
	}
	reg := tensor.Region{Off: shape(2, 2, 5), Ext: shape(3, 3, 5)}
	r := sm.InputRegion(reg, 0, in)
	if r.Off.C != 0 || r.Ext.C != 21 {
		t.Errorf("softmax needs all channels, got %v", r)
	}
}

func TestResize(t *testing.T) {
	rz := Resize{ScaleH: 4, ScaleW: 4, Mode: Bilinear}
	out := mustOut(t, rz, shape(33, 33, 256))
	if out != shape(132, 132, 256) {
		t.Errorf("out = %v", out)
	}
	reg := tensor.Region{Off: shape(0, 0, 0), Ext: shape(66, 132, 256)}
	r := rz.InputRegion(reg, 0, []tensor.Shape{shape(33, 33, 256)})
	// rows 0..65 map to source rows 0..16, +1 bilinear neighbour = 0..17.
	if r.Off.H != 0 || r.Ext.H != 18 {
		t.Errorf("resize region H = [%d,+%d], want [0,+18]", r.Off.H, r.Ext.H)
	}
	if _, err := (Resize{ScaleH: 0, ScaleW: 1}).OutShape([]tensor.Shape{shape(4, 4, 4)}); err == nil {
		t.Error("Resize must reject scale < 1")
	}
}

func TestInputOp(t *testing.T) {
	in := Input{Shape: shape(224, 224, 3)}
	out := mustOut(t, in)
	if out != shape(224, 224, 3) {
		t.Errorf("out = %v", out)
	}
	if _, err := in.OutShape([]tensor.Shape{shape(1, 1, 1)}); err == nil {
		t.Error("Input must reject inputs")
	}
}

func TestElementwiseClassification(t *testing.T) {
	if !Elementwise(Add{Arity: 2}) || !Elementwise(Mul{}) || !Elementwise(Activation{Func: ReLU}) {
		t.Error("Add/Mul/Activation are elementwise")
	}
	if Elementwise(NewConv2D(1, 1, 1, 1, 8, Padding{})) || Elementwise(Concat{Arity: 2}) {
		t.Error("Conv/Concat are not elementwise")
	}
}

func TestKindAndOpStrings(t *testing.T) {
	pairs := []struct {
		op   Op
		want Kind
	}{
		{Input{}, KindInput},
		{Conv2D{}, KindConv2D},
		{DepthwiseConv2D{}, KindDepthwiseConv2D},
		{TransposeConv2D{}, KindTransposeConv2D},
		{MaxPool2D{}, KindMaxPool2D},
		{AvgPool2D{}, KindAvgPool2D},
		{GlobalAvgPool{}, KindGlobalAvgPool},
		{FullyConnected{}, KindFullyConnected},
		{Add{}, KindAdd},
		{Mul{}, KindMul},
		{Concat{}, KindConcat},
		{Activation{}, KindActivation},
		{Softmax{}, KindSoftmax},
		{Resize{}, KindResize},
	}
	for _, p := range pairs {
		if p.op.Kind() != p.want {
			t.Errorf("%T.Kind() = %v, want %v", p.op, p.op.Kind(), p.want)
		}
		if p.op.String() == "" || p.op.Kind().String() == "" {
			t.Errorf("%T has empty String", p.op)
		}
	}
}

// Property: for any conv geometry, the input region of an output region
// is contained in the input region of any enclosing output region, and
// the whole output maps within the input bounds.
func TestConvInputRegionMonotone(t *testing.T) {
	f := func(k, s, o0, oLen uint8) bool {
		kk := int(k%5) + 1
		ss := int(s%3) + 1
		conv := NewConv2D(kk, kk, ss, ss, 4, Padding{Top: kk / 2, Bottom: kk / 2, Left: kk / 2, Right: kk / 2})
		in := []tensor.Shape{shape(64, 64, 8)}
		outShape, err := conv.OutShape(in)
		if err != nil {
			return true
		}
		start := int(o0) % outShape.H
		length := int(oLen)%(outShape.H-start) + 1
		sub := tensor.Region{Off: shape(start, 0, 0), Ext: shape(length, outShape.W, outShape.C)}
		whole := tensor.WholeRegion(outShape)
		rSub := conv.InputRegion(sub, 0, in)
		rWhole := conv.InputRegion(whole, 0, in)
		return rWhole.Contains(rSub) && tensor.WholeRegion(in[0]).Contains(rWhole)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: concat input regions across all inputs cover exactly the
// requested channel extent.
func TestConcatRegionsCover(t *testing.T) {
	f := func(c1, c2, c3, lo, ln uint8) bool {
		in := []tensor.Shape{
			shape(8, 8, int(c1%32)+1),
			shape(8, 8, int(c2%32)+1),
			shape(8, 8, int(c3%32)+1),
		}
		cat := Concat{Arity: 3}
		out, err := cat.OutShape(in)
		if err != nil {
			return false
		}
		start := int(lo) % out.C
		length := int(ln)%(out.C-start) + 1
		reg := tensor.Region{Off: shape(0, 0, start), Ext: shape(8, 8, length)}
		total := 0
		for i := range in {
			total += cat.InputRegion(reg, i, in).Ext.C
		}
		return total == length
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Package autotune implements profile-guided rebalancing: the paper
// notes that independently compiled sub-layers "may incur unbalanced
// workload across multicores and unnecessary idle time", and that
// "profiling execution assists to detect unwanted idle times and fix
// the unbalance" (Section 3.1.3).
//
// AutoBalance closes that loop against the simulator: compile,
// simulate, scale each core's partitioning weight by its observed
// utilization, and recompile, keeping the best schedule found.
package autotune

import (
	"math"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sim"
)

// Step records one tuning iteration.
type Step struct {
	// LatencyCycles is the simulated latency of the iteration.
	LatencyCycles float64
	// Scale is the per-core weight multiplier used.
	Scale []float64
}

// Result is the outcome of AutoBalance.
type Result struct {
	// Best is the best compilation found.
	Best *core.Result
	// BestLatencyCycles is its simulated latency.
	BestLatencyCycles float64
	// Steps traces every iteration in order.
	Steps []Step
}

// AutoBalance runs up to iters profile-and-rebalance iterations
// (iters >= 1; the first iteration is the unscaled compile).
func AutoBalance(g *graph.Graph, a *arch.Arch, opt core.Options, iters int) (*Result, error) {
	if iters < 1 {
		iters = 1
	}
	n := a.NumCores()
	scale := make([]float64, n)
	for i := range scale {
		scale[i] = 1
	}

	result := &Result{}
	for it := 0; it < iters; it++ {
		opt.WeightScale = append([]float64(nil), scale...)
		res, err := core.Compile(g, a, opt)
		if err != nil {
			return nil, err
		}
		out, err := sim.Run(res.Program, sim.Config{})
		if err != nil {
			return nil, err
		}
		lat := out.Stats.TotalCycles
		result.Steps = append(result.Steps, Step{LatencyCycles: lat, Scale: opt.WeightScale})
		if result.Best == nil || lat < result.BestLatencyCycles {
			result.Best = res
			result.BestLatencyCycles = lat
		}
		if it == iters-1 {
			break
		}

		// Bottleneck-driven update: a core's pace is set by its busiest
		// engine (compute, load DMA, or store DMA). Equalizing the
		// bottleneck-engine occupancy across cores equalizes per-layer
		// finish times — the imbalance profiling is meant to fix. The
		// square root damps the step against oscillation.
		work := make([]float64, n)
		var mean float64
		for c, cs := range out.Stats.PerCore {
			work[c] = math.Max(cs.ComputeBusy, math.Max(cs.LoadBusy, cs.StoreBusy))
			if work[c] < 1 {
				work[c] = 1
			}
			mean += work[c]
		}
		mean /= float64(n)
		if mean <= 0 {
			break
		}
		for c := range scale {
			scale[c] *= math.Sqrt(mean / work[c])
		}
	}
	return result, nil
}

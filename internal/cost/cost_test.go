package cost

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/tensor"
)

func model() *Model { return New(arch.Exynos2100Like()) }

func TestComputeCycles(t *testing.T) {
	m := model()
	// 2048 MACs/cycle * 0.55 eff = 1126.4 effective; 11264 MACs -> 10 cycles.
	if got := m.ComputeCycles(0, 11264, tensor.Int8); got != 10 {
		t.Errorf("ComputeCycles = %d, want 10", got)
	}
	if got := m.ComputeCycles(0, 0, tensor.Int8); got != 0 {
		t.Errorf("zero MACs cost %d", got)
	}
	// INT16 halves throughput: same MACs take twice as long.
	i8 := m.ComputeCycles(0, 1<<20, tensor.Int8)
	i16 := m.ComputeCycles(0, 1<<20, tensor.Int16)
	if i16 != 2*i8 {
		t.Errorf("INT16 %d != 2 * INT8 %d", i16, i8)
	}
}

func TestDMACycles(t *testing.T) {
	m := model()
	// Core 0: 16 B/cycle.
	if got := m.DMACycles(0, 1600); got != 100 {
		t.Errorf("DMACycles = %d, want 100", got)
	}
	// Core 2 is slower (8 B/cycle): same bytes take longer.
	if m.DMACycles(2, 1600) <= m.DMACycles(0, 1600) {
		t.Error("slow-DMA core should take longer")
	}
	if m.DMACycles(1, -5) != 0 {
		t.Error("negative bytes must be free")
	}
}

func TestLayerTimeOnCoreMax(t *testing.T) {
	m := model()
	// Compute-bound: many MACs, no bytes.
	if got := m.LayerTimeOnCore(0, 1<<24, 0, tensor.Int8); got != m.ComputeCycles(0, 1<<24, tensor.Int8) {
		t.Errorf("compute-bound time = %d", got)
	}
	// Memory-bound: no MACs, many bytes.
	if got := m.LayerTimeOnCore(0, 0, 1<<24, tensor.Int8); got != m.DMACycles(0, 1<<24) {
		t.Errorf("memory-bound time = %d", got)
	}
}

func TestBalanceWeightsEqualCores(t *testing.T) {
	m := New(arch.Homogeneous(4))
	w := m.BalanceWeights(1000, 100, tensor.Int8)
	for i := 1; i < len(w); i++ {
		if w[i] != w[0] {
			t.Errorf("homogeneous weights differ: %v", w)
		}
	}
}

func TestBalanceWeightsFavorFastDMAWhenMemoryBound(t *testing.T) {
	m := model()
	// Memory-bound work: weights should order by DMA bandwidth 16 > 12 > 8.
	w := m.BalanceWeights(1, 1000, tensor.Int8)
	if !(w[0] > w[1] && w[1] > w[2]) {
		t.Errorf("memory-bound weights %v not ordered by DMA bandwidth", w)
	}
	// Compute-bound work: equal MACs/cycle -> equal weights.
	wc := m.BalanceWeights(1e6, 1, tensor.Int8)
	if wc[0] != wc[1] || wc[1] != wc[2] {
		t.Errorf("compute-bound weights %v should be equal", wc)
	}
}

func TestBalanceWeightsZeroWork(t *testing.T) {
	m := model()
	w := m.BalanceWeights(0, 0, tensor.Int8)
	for _, v := range w {
		if v != 1 {
			t.Errorf("zero-work weights = %v, want all 1", w)
		}
	}
}

func TestSyncCyclesIncludesExpectedJitter(t *testing.T) {
	m := model()
	want := m.Arch.SyncCost(3) + m.Arch.SyncJitterCycles/2
	if m.SyncCycles(3) != want {
		t.Errorf("SyncCycles(3) = %d, want %d (barrier + expected jitter)", m.SyncCycles(3), want)
	}
	if m.SyncCycles(1) != 0 {
		t.Error("single core sync must be free")
	}
}

package sim_test

import (
	. "repro/internal/sim"

	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/models"
)

func TestRepeatValid(t *testing.T) {
	g := models.TinyCNN()
	res, err := core.Compile(g, arch.Exynos2100Like(), core.Stratum())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Repeat(res.Program, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.NumInstrs() != 4*res.Program.NumInstrs() {
		t.Errorf("instrs = %d, want %d", rep.NumInstrs(), 4*res.Program.NumInstrs())
	}
	if rep.NumBarriers != 4*res.Program.NumBarriers {
		t.Errorf("barriers = %d", rep.NumBarriers)
	}
	if _, err := Repeat(res.Program, 0); err == nil {
		t.Error("zero repeat accepted")
	}
	one, err := Repeat(res.Program, 1)
	if err != nil || one != res.Program {
		t.Error("n=1 must return the program unchanged")
	}
}

func TestThroughputBeatsLatency(t *testing.T) {
	// Steady-state period must be at most the single-shot latency:
	// iteration i+1's loads overlap iteration i's tail.
	g := models.TinyCNN()
	res, err := core.Compile(g, arch.Exynos2100Like(), core.Stratum())
	if err != nil {
		t.Fatal(err)
	}
	single, err := Run(res.Program, Config{})
	if err != nil {
		t.Fatal(err)
	}
	period, batch, err := Throughput(res.Program, 6, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if period > single.Stats.TotalCycles+1 {
		t.Errorf("period %.0f > single-shot latency %.0f", period, single.Stats.TotalCycles)
	}
	if batch.Stats.TotalCycles <= single.Stats.TotalCycles {
		t.Error("batch finished faster than one inference")
	}
	// Total work scales exactly with the batch size.
	if batch.Stats.TotalMACs() != 6*single.Stats.TotalMACs() {
		t.Errorf("batch MACs %d != 6x single %d", batch.Stats.TotalMACs(), single.Stats.TotalMACs())
	}
}

package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/models"
	"repro/internal/sim"
)

// TestCompileCtxNilMatchesCompile: a nil context is the plain path.
func TestCompileCtxNilMatchesCompile(t *testing.T) {
	g := smallCNN()
	a := arch.Exynos2100Like()
	res, err := CompileCtx(nil, g, a, Stratum())
	if err != nil {
		t.Fatal(err)
	}
	if res.Program.NumInstrs() == 0 {
		t.Fatal("empty program")
	}
}

// TestCompileCtxPreCanceled: an already-canceled context aborts before
// any stage runs.
func TestCompileCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := CompileCtx(ctx, smallCNN(), arch.Exynos2100Like(), Stratum())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	// One sentinel covers every checkpoint: compile-stage cancellations
	// match sim.ErrCanceled just like mid-simulation ones.
	if !errors.Is(err, sim.ErrCanceled) {
		t.Fatalf("got %v, want sim.ErrCanceled match", err)
	}
}

// TestCompileCtxDeadlineResNet50: the acceptance bound — a 1ms
// deadline against ResNet-50 must surface a typed deadline error well
// within 50ms of expiry (the checkpoints sit between stages, per
// planned layer, per emitted layer, and inside the admission sim).
func TestCompileCtxDeadlineResNet50(t *testing.T) {
	g := models.ByNameMust("ResNet50")
	a := arch.Exynos2100Like()
	deadline := 1 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	start := time.Now()
	_, err := CompileCtx(ctx, g, a, Stratum())
	late := time.Since(start) - deadline
	if err == nil {
		t.Skip("ResNet50 compiled inside 1ms; nothing to cancel")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	if bound := 50 * time.Millisecond; late > bound {
		t.Errorf("deadline error arrived %v after expiry (bound %v)", late, bound)
	}
}

// TestCompileCachedCtxUncorrupted: a canceled compile must leave no
// cache entry behind; the identical follow-up compiles cleanly, and
// the one after that hits.
func TestCompileCachedCtxUncorrupted(t *testing.T) {
	ResetCache()
	g := smallCNN()
	a := arch.Exynos2100Like()
	opt := Stratum()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CompileCachedCtx(ctx, g, a, opt); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if Cached(g, a, opt) {
		t.Fatal("canceled compile left a cache entry")
	}

	res, err := CompileCachedCtx(context.Background(), g, a, opt)
	if err != nil {
		t.Fatalf("follow-up compile failed: %v", err)
	}
	if !Cached(g, a, opt) {
		t.Fatal("successful compile did not populate the cache")
	}

	hits0, _ := CacheStats()
	res2, err := CompileCachedCtx(context.Background(), g, a, opt)
	if err != nil {
		t.Fatal(err)
	}
	if hits, _ := CacheStats(); hits != hits0+1 {
		t.Fatalf("third identical compile did not hit the cache (hits %d -> %d)", hits0, hits)
	}
	if res.Program.NumInstrs() != res2.Program.NumInstrs() {
		t.Fatal("cache round trip changed the program")
	}
}

package tenancy

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sim"
)

// A silent hang mid-horizon must degrade to a remapped completion on
// the surviving cores, not an error: the watchdog detects the stall,
// the scheduler retires the core, folds the typed checkpoint, and
// keeps serving. Same spec, same report.
func TestRunSurvivesHangMidHorizon(t *testing.T) {
	a := arch.Exynos2100Like()
	g, err := buildModel("TinyCNN")
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Compile(g, a, core.Stratum())
	if err != nil {
		t.Fatal(err)
	}
	out, err := sim.Run(res.Program, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	clean := out.Stats.TotalCycles

	plan, err := fault.ParseSpec(fmt.Sprintf("hang=2@%.0f", 0.3*clean), 1)
	if err != nil {
		t.Fatal(err)
	}
	tenants := []Tenant{{Name: "only", Model: "TinyCNN", Priority: 1}}
	opts := Options{
		HorizonUS: 2000,
		Sim:       sim.Config{Faults: plan, WatchdogCycles: 0.1 * clean},
	}
	rep, err := Run(a, tenants, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !sameCores(rep.DeadCores, []int{2}) {
		t.Fatalf("dead cores %v, want [2]", rep.DeadCores)
	}
	if len(rep.Failures) == 0 {
		t.Error("no failure logged for the detected hang")
	}
	tr := rep.Tenants[0]
	if tr.Inferences == 0 {
		t.Fatal("hang degraded service to zero inferences")
	}
	if !sameCores(tr.FinalCores, []int{0, 1}) {
		t.Errorf("final cores %v, want the survivors [0 1]", tr.FinalCores)
	}
	if tr.Remaps == 0 {
		t.Error("tenant was never re-mapped onto the survivors")
	}

	// Fewer cores and a wasted stall: the run must serve less than a
	// fault-free horizon would.
	cleanRep, err := Run(a, tenants, Options{HorizonUS: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Inferences >= cleanRep.Tenants[0].Inferences {
		t.Errorf("degraded run served %d inferences, clean run %d",
			tr.Inferences, cleanRep.Tenants[0].Inferences)
	}
	if len(cleanRep.DeadCores) != 0 || len(cleanRep.Failures) != 0 {
		t.Errorf("clean run reports dead cores %v failures %v",
			cleanRep.DeadCores, cleanRep.Failures)
	}

	again, err := Run(a, tenants, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, again) {
		t.Error("same faulted spec produced different reports")
	}
}

// An announced core death takes the same degradation path, and a
// co-tenant placed on the surviving cores keeps serving through it.
func TestRunSurvivesDeathWithCoTenant(t *testing.T) {
	a := arch.Exynos2100Like()
	plan, err := fault.ParseSpec("kill=0@2000", 1)
	if err != nil {
		t.Fatal(err)
	}
	tenants := []Tenant{
		{Name: "p", Model: "TinyCNN", Priority: 2},
		{Name: "q", Model: "TinyCNN", Priority: 1},
	}
	opts := Options{HorizonUS: 4000, Sim: sim.Config{Faults: plan}}
	rep, err := Run(a, tenants, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !sameCores(rep.DeadCores, []int{0}) {
		t.Fatalf("dead cores %v, want [0]", rep.DeadCores)
	}
	for _, tr := range rep.Tenants {
		if tr.Inferences == 0 {
			t.Errorf("tenant %s served nothing after the core death", tr.Name)
		}
		for _, c := range tr.FinalCores {
			if c == 0 {
				t.Errorf("tenant %s still holds dead core 0: %v", tr.Name, tr.FinalCores)
			}
		}
	}
}

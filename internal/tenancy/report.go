package tenancy

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/arch"
)

// TenantReport is one tenant's serving statistics over the horizon.
type TenantReport struct {
	Name     string  `json:"name"`
	Model    string  `json:"model"`
	Priority int     `json:"priority"`
	SLOUS    float64 `json:"slo_us"`
	ArriveUS float64 `json:"arrive_us"`
	DepartUS float64 `json:"depart_us,omitempty"`
	// AdmittedUS is when the tenant first held cores (-1: never).
	AdmittedUS float64 `json:"admitted_us"`
	// Inferences counts completed inferences; an inference still in
	// flight at the horizon is not counted.
	Inferences int64 `json:"inferences"`
	SLOHits    int64 `json:"slo_hits"`
	// SLOHitPct is 100*SLOHits/Inferences (0 with no inferences).
	SLOHitPct float64 `json:"slo_hit_pct"`
	// MeanLatencyUS averages completed-inference latency, including
	// cycles carried across preemptions.
	MeanLatencyUS float64 `json:"mean_latency_us"`
	// IsolatedUS is the inference-weighted mean latency the tenant's
	// programs achieve alone on their subsets (fault-free baseline).
	IsolatedUS float64 `json:"isolated_us"`
	// InterferencePct is the inference-weighted mean co-run slowdown
	// over the isolated baseline: (shared - isolated)/isolated * 100.
	InterferencePct float64 `json:"interference_pct"`
	// Remaps counts re-targetings onto a different core subset after
	// admission; Preemptions counts stratum-boundary cuts.
	Remaps      int `json:"remaps"`
	Preemptions int `json:"preemptions"`
	// FinalCores is the subset held when the horizon closed (empty if
	// departed or queued).
	FinalCores []int `json:"final_cores,omitempty"`
}

// Report is a full tenancy run: per-tenant rows in spec order plus the
// run's shape. It contains no wall-clock fields — same inputs marshal
// byte-identically.
type Report struct {
	Arch      string  `json:"arch"`
	ClockMHz  int     `json:"clock_mhz"`
	Opt       string  `json:"opt"`
	HorizonUS float64 `json:"horizon_us"`
	Epochs    int     `json:"epochs"`
	CoSims    int     `json:"co_sims"`
	// DeadCores lists cores retired mid-horizon by detected hangs or
	// announced failures; Failures logs the typed errors survived, in
	// order. Both empty on a fault-free run.
	DeadCores []int          `json:"dead_cores,omitempty"`
	Failures  []string       `json:"failures,omitempty"`
	Tenants   []TenantReport `json:"tenants"`
}

func buildReport(a *arch.Arch, optName string, horizonUS float64, epochs, coSims int, states []*tenantState, deadCores []int, failures []string) *Report {
	r := &Report{
		Arch:      a.Name,
		ClockMHz:  a.ClockMHz,
		Opt:       optName,
		HorizonUS: horizonUS,
		Epochs:    epochs,
		CoSims:    coSims,
		DeadCores: deadCores,
		Failures:  failures,
	}
	clock := float64(a.ClockMHz)
	for _, ts := range states {
		tr := TenantReport{
			Name:        ts.spec.Name,
			Model:       ts.spec.Model,
			Priority:    ts.spec.Priority,
			SLOUS:       ts.spec.SLOUS,
			ArriveUS:    ts.spec.ArriveUS,
			DepartUS:    ts.spec.DepartUS,
			AdmittedUS:  ts.firstUS,
			Inferences:  ts.infs,
			SLOHits:     ts.hits,
			Remaps:      ts.remaps,
			Preemptions: ts.preempts,
		}
		if ts.infs > 0 {
			tr.SLOHitPct = 100 * float64(ts.hits) / float64(ts.infs)
			tr.MeanLatencyUS = ts.sumLatency / float64(ts.infs) / clock
		}
		if ts.weight > 0 {
			tr.IsolatedUS = ts.wIsolated / ts.weight / clock
			tr.InterferencePct = ts.wInterf / ts.weight
		}
		if ts.active && ts.cores != nil {
			tr.FinalCores = ts.cores
		}
		r.Tenants = append(r.Tenants, tr)
	}
	return r
}

// WriteJSON marshals the report with stable field order and trailing
// newline; same report, same bytes.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Print renders the per-tenant table.
func (r *Report) Print(w io.Writer) {
	fmt.Fprintf(w, "multi-tenant serving on %s (%s, %.0f us horizon, %d epochs)\n",
		r.Arch, r.Opt, r.HorizonUS, r.Epochs)
	fmt.Fprintf(w, "%-10s %-16s %4s %9s %6s %8s %9s %9s %7s %6s %6s\n",
		"tenant", "model", "prio", "slo(us)", "infs", "hit%", "mean(us)", "isol(us)", "intf%", "remap", "cut")
	for _, t := range r.Tenants {
		slo := "-"
		if t.SLOUS > 0 {
			slo = fmt.Sprintf("%.0f", t.SLOUS)
		}
		fmt.Fprintf(w, "%-10s %-16s %4d %9s %6d %8.1f %9.1f %9.1f %7.1f %6d %6d\n",
			t.Name, t.Model, t.Priority, slo, t.Inferences, t.SLOHitPct,
			t.MeanLatencyUS, t.IsolatedUS, t.InterferencePct, t.Remaps, t.Preemptions)
	}
}

package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is one bucket per power of two of microseconds: bucket i
// holds observations in [2^(i-1), 2^i) µs (bucket 0 holds < 1 µs).
// 64 buckets cover every representable duration.
const histBuckets = 64

// Histogram is a lock-free latency histogram with exponential
// (power-of-two microsecond) buckets. Concurrent Observe calls never
// block; Quantile reads a best-effort snapshot (exact once writers
// quiesce). The zero value is ready to use.
//
// Two-percent-style accuracy is plenty for serving dashboards: a
// quantile resolves to its bucket and is reported as the bucket's
// geometric mean, so the value is within a factor of sqrt(2) of the
// true order statistic (plus microsecond rounding).
type Histogram struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sumUS  atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	h.counts[bucketIndex(us)].Add(1)
	h.count.Add(1)
	h.sumUS.Add(us)
}

// bucketIndex maps a non-negative microsecond count to its bucket.
func bucketIndex(us int64) int {
	return bits.Len64(uint64(us)) % histBuckets
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Mean returns the mean observed duration (0 when empty).
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumUS.Load()/n) * time.Microsecond
}

// Quantile returns the q-quantile (0 <= q <= 1) of the observed
// durations; see the accuracy contract on Histogram. Empty histograms
// return 0.
func (h *Histogram) Quantile(q float64) time.Duration {
	d := h.Dist()
	return d.Quantile(q)
}

// Merge adds o's observations into h, bucket by bucket, so the merged
// histogram is exactly what one histogram fed every observation would
// hold: per-shard histograms combine without any quantile error.
// Merge may run concurrently with Observe on either side (the usual
// lock-free snapshot caveats apply); merging a histogram into itself
// is not supported.
func (h *Histogram) Merge(o *Histogram) {
	for i := range o.counts {
		if c := o.counts[i].Load(); c != 0 {
			h.counts[i].Add(c)
		}
	}
	h.count.Add(o.count.Load())
	h.sumUS.Add(o.sumUS.Load())
}

// Dist captures the histogram's buckets as a plain value — the
// snapshot-level form of Merge. A single-writer hot loop can Observe
// into its own Dist with no atomic traffic at all, and per-shard
// captures Merge exactly (bucket counts add), so merged quantiles
// equal those of a single histogram fed every observation.
func (h *Histogram) Dist() Dist {
	var d Dist
	for i := range h.counts {
		d.Counts[i] = h.counts[i].Load()
		d.N += d.Counts[i]
	}
	d.SumUS = h.sumUS.Load()
	return d
}

// Dist is a value-type histogram over the same power-of-two buckets as
// Histogram, with plain (non-atomic) counters: the zero value is ready
// to use by a single writer, and Merge combines captures exactly.
type Dist struct {
	Counts [histBuckets]int64
	N      int64
	SumUS  int64
}

// Observe records one latency in whole microseconds.
func (d *Dist) Observe(us int64) {
	if us < 0 {
		us = 0
	}
	d.Counts[bucketIndex(us)]++
	d.N++
	d.SumUS += us
}

// ObserveN records n identical latencies in whole microseconds — the
// bulk form of Observe for replay loops that book a whole epoch of
// equal-period inferences at once (tenancy gang rounds). Equivalent to
// calling Observe(us) n times; n <= 0 records nothing.
func (d *Dist) ObserveN(us, n int64) {
	if n <= 0 {
		return
	}
	if us < 0 {
		us = 0
	}
	d.Counts[bucketIndex(us)] += n
	d.N += n
	d.SumUS += us * n
}

// Merge adds o's observations into d, exactly.
func (d *Dist) Merge(o *Dist) {
	for i, c := range o.Counts {
		d.Counts[i] += c
	}
	d.N += o.N
	d.SumUS += o.SumUS
}

// Count returns the number of observations.
func (d *Dist) Count() int64 { return d.N }

// Mean returns the mean observed duration (0 when empty).
func (d *Dist) Mean() time.Duration {
	if d.N == 0 {
		return 0
	}
	return time.Duration(d.SumUS/d.N) * time.Microsecond
}

// Quantile returns the q-quantile of the captured observations: the
// geometric mean of the bucket holding the rank, within a factor of
// sqrt(2) of the true order statistic (plus microsecond rounding).
func (d *Dist) Quantile(q float64) time.Duration {
	if d.N == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(d.N-1))
	var seen int64
	for i, c := range d.Counts {
		if c == 0 {
			continue
		}
		if rank < seen+c {
			return bucketValue(i)
		}
		seen += c
	}
	return bucketValue(histBuckets - 1)
}

// bucketValue returns bucket i's representative duration: the
// geometric mean of its bounds. Every value in [lo, hi) is within a
// factor of sqrt(hi/lo) = sqrt(2) of it. Bucket 0 holds only sub-µs
// observations (recorded as 0), so its representative is 0.
func bucketValue(i int) time.Duration {
	if i == 0 {
		return 0
	}
	lo, hi := bucketBounds(i)
	us := math.Sqrt(float64(lo) * float64(hi))
	return time.Duration(us) * time.Microsecond
}

// bucketBounds returns bucket i's [lo, hi) span in microseconds.
func bucketBounds(i int) (lo, hi int64) {
	if i == 0 {
		return 0, 1
	}
	return 1 << (i - 1), 1 << i
}

// HistogramSnapshot is a marshalable point-in-time view.
type HistogramSnapshot struct {
	Count  int64
	MeanUS int64
	P50US  int64
	P90US  int64
	P99US  int64
	P999US int64
}

// Snapshot captures the histogram for a stats endpoint.
func (h *Histogram) Snapshot() HistogramSnapshot {
	d := h.Dist()
	return d.Snapshot()
}

// Snapshot summarizes the capture in the stats-endpoint form.
func (d *Dist) Snapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Count:  d.N,
		MeanUS: d.Mean().Microseconds(),
		P50US:  d.Quantile(0.50).Microseconds(),
		P90US:  d.Quantile(0.90).Microseconds(),
		P99US:  d.Quantile(0.99).Microseconds(),
		P999US: d.Quantile(0.999).Microseconds(),
	}
}

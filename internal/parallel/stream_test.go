package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// TestStreamAll: every emitted value is consumed exactly once, across
// serial and parallel pool sizes.
func TestStreamAll(t *testing.T) {
	for _, workers := range []int{1, 4} {
		prev := SetWorkers(workers)
		var sum, count atomic.Int64
		err := Stream(nil, 8,
			func(emit func(int) bool) error {
				for i := 1; i <= 1000; i++ {
					if !emit(i) {
						t.Error("emit refused mid-stream with no failure")
					}
				}
				return nil
			},
			func(_ int, v int) error {
				sum.Add(int64(v))
				count.Add(1)
				return nil
			})
		SetWorkers(prev)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if count.Load() != 1000 || sum.Load() != 500500 {
			t.Fatalf("workers=%d: consumed %d values, sum %d", workers, count.Load(), sum.Load())
		}
	}
}

// TestStreamWorkerIndex: consumers see stable worker indexes in
// [0, Workers()), so per-worker state needs no locking.
func TestStreamWorkerIndex(t *testing.T) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	perWorker := make([]int64, 4) // one slot per worker, no atomics needed
	err := Stream(nil, 4,
		func(emit func(int) bool) error {
			for i := 0; i < 400; i++ {
				emit(i)
			}
			return nil
		},
		func(worker int, _ int) error {
			if worker < 0 || worker >= 4 {
				t.Errorf("worker index %d out of range", worker)
			}
			perWorker[worker]++
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, n := range perWorker {
		total += n
	}
	if total != 400 {
		t.Fatalf("consumed %d, want 400", total)
	}
}

// TestStreamConsumerError: a consumer error shuts the stream down —
// emit starts refusing, and the error is returned.
func TestStreamConsumerError(t *testing.T) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	boom := errors.New("boom")
	refused := false
	err := Stream(nil, 1,
		func(emit func(int) bool) error {
			for i := 0; ; i++ {
				if !emit(i) {
					refused = true
					return nil
				}
			}
		},
		func(_ int, v int) error {
			if v == 10 {
				return boom
			}
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if !refused {
		t.Fatal("producer was never told to stop")
	}
}

// TestStreamProducerError: the producer's own error is returned once
// the already-emitted items have drained.
func TestStreamProducerError(t *testing.T) {
	prev := SetWorkers(2)
	defer SetWorkers(prev)
	boom := errors.New("dry")
	var consumed atomic.Int64
	err := Stream(nil, 4,
		func(emit func(int) bool) error {
			for i := 0; i < 5; i++ {
				emit(i)
			}
			return boom
		},
		func(_ int, _ int) error {
			consumed.Add(1)
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want dry", err)
	}
	if consumed.Load() != 5 {
		t.Fatalf("consumed %d, want all 5 emitted before the producer error", consumed.Load())
	}
}

// TestStreamPanic: a consumer panic is re-raised on the caller.
func TestStreamPanic(t *testing.T) {
	prev := SetWorkers(2)
	defer SetWorkers(prev)
	defer func() {
		if r := recover(); r != "kaboom" {
			t.Fatalf("recovered %v, want kaboom", r)
		}
	}()
	Stream(nil, 1,
		func(emit func(int) bool) error {
			for i := 0; i < 100 && emit(i); i++ {
			}
			return nil
		},
		func(_ int, v int) error {
			if v == 3 {
				panic("kaboom")
			}
			return nil
		})
	t.Fatal("panic was not re-raised")
}

// TestStreamCancel: canceling the context stops the producer and
// returns ctx.Err().
func TestStreamCancel(t *testing.T) {
	prev := SetWorkers(2)
	defer SetWorkers(prev)
	ctx, cancel := context.WithCancel(context.Background())
	var consumed atomic.Int64
	err := Stream(ctx, 1,
		func(emit func(int) bool) error {
			for i := 0; ; i++ {
				if i == 50 {
					cancel()
				}
				if !emit(i) {
					return nil
				}
			}
		},
		func(_ int, _ int) error {
			consumed.Add(1)
			return nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if consumed.Load() > 60 {
		t.Fatalf("consumed %d items after cancellation", consumed.Load())
	}
}

// TestStreamBackpressure: the buffer bounds emitted-but-unconsumed
// items, so a paused consumer blocks the producer at buffer depth.
func TestStreamBackpressure(t *testing.T) {
	prev := SetWorkers(1)
	defer SetWorkers(prev)
	gate := make(chan struct{})
	var maxPending atomic.Int64
	var pending atomic.Int64
	err := Stream(nil, 2,
		func(emit func(int) bool) error {
			for i := 0; i < 20; i++ {
				if i == 3 {
					// The producer is now 3 ahead (1 consumed-but-held +
					// 2 buffered); release the worker before emit blocks.
					close(gate)
				}
				pending.Add(1)
				if p := pending.Load(); p > maxPending.Load() {
					maxPending.Store(p)
				}
				emit(i)
			}
			return nil
		},
		func(_ int, v int) error {
			if v == 0 {
				<-gate // hold the single worker until released
			}
			pending.Add(-1)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	// 2 buffered + 1 in the consumer's hands + 1 blocked in emit.
	if m := maxPending.Load(); m > 4 {
		t.Fatalf("producer ran %d ahead of the consumer, want <= 4", m)
	}
}

// Package models builds the six benchmark CNNs of the paper's Table 2
// as layer graphs, plus small synthetic networks used by tests and
// examples.
//
// The graphs are structurally faithful reconstructions from the
// networks' published architectures (layer kinds, kernel geometries,
// channel widths, branch structure). Weights are irrelevant here — the
// paper's evaluation is latency, not accuracy — so none are attached.
package models

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/tensor"
)

// Info describes one benchmark model (a Table 2 row).
type Info struct {
	// Name is the model's common name.
	Name string
	// Category is the task family in Table 2.
	Category string
	// Input is the network input shape (HxWxC).
	Input tensor.Shape
	// DType is the quantized element type the paper runs the model in.
	DType tensor.DType
	// Build constructs the layer graph.
	Build func() *graph.Graph
}

// All returns the benchmark models in Table 2 order.
func All() []Info {
	return []Info{
		{Name: "InceptionV3", Category: "Classification", Input: tensor.NewShape(299, 299, 3), DType: tensor.Int8, Build: InceptionV3},
		{Name: "MobileNetV2", Category: "Classification", Input: tensor.NewShape(224, 224, 3), DType: tensor.Int8, Build: MobileNetV2},
		{Name: "MobileNetV2-SSD", Category: "Object detection", Input: tensor.NewShape(300, 300, 3), DType: tensor.Int8, Build: MobileNetV2SSD},
		{Name: "MobileDet-SSD", Category: "Object detection", Input: tensor.NewShape(320, 320, 3), DType: tensor.Int8, Build: MobileDetSSD},
		{Name: "DeepLabV3+", Category: "Segmentation", Input: tensor.NewShape(513, 513, 3), DType: tensor.Int16, Build: DeepLabV3Plus},
		{Name: "UNet", Category: "Segmentation", Input: tensor.NewShape(572, 572, 3), DType: tensor.Int8, Build: UNet},
	}
}

// ByName returns the model with the given name, searching the Table 2
// benchmarks first and then the extra zoo (ResNet50, VGG16).
func ByName(name string) (Info, error) {
	for _, m := range append(All(), Extra()...) {
		if m.Name == name {
			return m, nil
		}
	}
	return Info{}, fmt.Errorf("models: unknown model %q", name)
}

// ByNameMust builds the benchmark model with the given name, panicking
// on an unknown name. For tests and benchmarks.
func ByNameMust(name string) *graph.Graph {
	m, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return m.Build()
}

// builder wraps a graph with convenience layer constructors that fold
// batch-norm into convolution (as deployed INT8 models do) and name
// layers hierarchically.
type builder struct {
	g *graph.Graph
	n int
}

func newBuilder(name string, dt tensor.DType) *builder {
	return &builder{g: graph.New(name, dt)}
}

func (b *builder) uniq(prefix string) string {
	b.n++
	return fmt.Sprintf("%s_%d", prefix, b.n)
}

func (b *builder) input(s tensor.Shape) graph.LayerID {
	return b.g.Input("input", s)
}

func (b *builder) shape(id graph.LayerID) tensor.Shape { return b.g.Layer(id).OutShape }

// conv adds a convolution with SAME padding and a fused ReLU.
func (b *builder) conv(name string, in graph.LayerID, k, stride, outC int) graph.LayerID {
	s := b.shape(in)
	c := b.g.MustAdd(name, ops.NewConv2D(k, k, stride, stride, outC,
		ops.SamePad(s, k, k, stride, stride, 1, 1)), in)
	return b.g.MustAdd(name+"_relu", ops.Activation{Func: ops.ReLU}, c)
}

// convValid adds a VALID-padded convolution with a fused ReLU.
func (b *builder) convValid(name string, in graph.LayerID, k, stride, outC int) graph.LayerID {
	c := b.g.MustAdd(name, ops.NewConv2D(k, k, stride, stride, outC, ops.Padding{}), in)
	return b.g.MustAdd(name+"_relu", ops.Activation{Func: ops.ReLU}, c)
}

// convLinear adds a SAME-padded convolution without activation
// (projection layers in inverted residuals).
func (b *builder) convLinear(name string, in graph.LayerID, k, stride, outC int) graph.LayerID {
	s := b.shape(in)
	return b.g.MustAdd(name, ops.NewConv2D(k, k, stride, stride, outC,
		ops.SamePad(s, k, k, stride, stride, 1, 1)), in)
}

// convRect adds a SAME-padded rectangular convolution (Inception 1x7
// and 7x1 factorizations) with ReLU.
func (b *builder) convRect(name string, in graph.LayerID, kh, kw, outC int) graph.LayerID {
	s := b.shape(in)
	c := b.g.MustAdd(name, ops.NewConv2D(kh, kw, 1, 1, outC,
		ops.SamePad(s, kh, kw, 1, 1, 1, 1)), in)
	return b.g.MustAdd(name+"_relu", ops.Activation{Func: ops.ReLU}, c)
}

// dwconv adds a SAME-padded depthwise convolution with ReLU6.
func (b *builder) dwconv(name string, in graph.LayerID, k, stride int) graph.LayerID {
	s := b.shape(in)
	c := b.g.MustAdd(name, ops.NewDepthwiseConv2D(k, k, stride, stride,
		ops.SamePad(s, k, k, stride, stride, 1, 1)), in)
	return b.g.MustAdd(name+"_relu", ops.Activation{Func: ops.ReLU6}, c)
}

// dwconvDilated adds a dilated depthwise convolution (DeepLab atrous).
func (b *builder) dwconvDilated(name string, in graph.LayerID, k, dil int) graph.LayerID {
	s := b.shape(in)
	op := ops.DepthwiseConv2D{KH: k, KW: k, StrideH: 1, StrideW: 1, DilH: dil, DilW: dil,
		Pad: ops.SamePad(s, k, k, 1, 1, dil, dil)}
	c := b.g.MustAdd(name, op, in)
	return b.g.MustAdd(name+"_relu", ops.Activation{Func: ops.ReLU6}, c)
}

// maxpool adds a max-pooling layer.
func (b *builder) maxpool(name string, in graph.LayerID, k, stride int) graph.LayerID {
	return b.g.MustAdd(name, ops.MaxPool2D{KH: k, KW: k, StrideH: stride, StrideW: stride}, in)
}

// maxpoolSame adds SAME-padded max pooling (Inception branch pools).
func (b *builder) maxpoolSame(name string, in graph.LayerID, k, stride int) graph.LayerID {
	s := b.shape(in)
	return b.g.MustAdd(name, ops.MaxPool2D{KH: k, KW: k, StrideH: stride, StrideW: stride,
		Pad: ops.SamePad(s, k, k, stride, stride, 1, 1)}, in)
}

// avgpoolSame adds SAME-padded average pooling.
func (b *builder) avgpoolSame(name string, in graph.LayerID, k, stride int) graph.LayerID {
	s := b.shape(in)
	return b.g.MustAdd(name, ops.AvgPool2D{KH: k, KW: k, StrideH: stride, StrideW: stride,
		Pad: ops.SamePad(s, k, k, stride, stride, 1, 1)}, in)
}

// concat concatenates branches along channels.
func (b *builder) concat(name string, ins ...graph.LayerID) graph.LayerID {
	return b.g.MustAdd(name, ops.Concat{Arity: len(ins)}, ins...)
}

// add sums two branches.
func (b *builder) add(name string, x, y graph.LayerID) graph.LayerID {
	return b.g.MustAdd(name, ops.Add{Arity: 2}, x, y)
}

// classifierHead appends global pooling, a fully connected layer, and
// softmax.
func (b *builder) classifierHead(in graph.LayerID, classes int) {
	gap := b.g.MustAdd("gap", ops.GlobalAvgPool{}, in)
	fc := b.g.MustAdd("fc", ops.FullyConnected{OutC: classes}, gap)
	b.g.MustAdd("softmax", ops.Softmax{}, fc)
}

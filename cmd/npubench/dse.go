package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/dse"
	"repro/internal/models"
)

// dseRow is one model's design-space exploration outcome in the
// BENCH_dse.json artifact. WallClockMS is the only nondeterministic
// field; the CI determinism check strips it (jq del) before comparing
// same-seed runs byte-for-byte.
type dseRow struct {
	Model             string
	BaselineCycles    float64
	BestCycles        float64
	ImprovementPct    float64
	Points            int
	Revisits          int
	Infeasible        int
	CacheHits         int64
	CacheMisses       int64
	CacheHitRate      float64
	BestFallback      string
	EngineMatch       bool
	MethodOverrides   int
	BoundaryOverrides int
	ScaleOverrides    int
	WallClockMS       float64
}

// dseReport is the BENCH_dse.json schema.
type dseReport struct {
	Seed        uint64
	Jobs        int
	Rows        []dseRow
	WallClockMS float64
}

// dseParams carries the -dse-* flags into the experiment.
type dseParams struct {
	json    string
	models  string
	seed    uint64
	params  dse.Params
	jobs    int
	baseCfg string
}

// runDSE is the -experiment dse hook: a seeded search per requested
// Table 2 model against the +Stratum heuristic baseline, printed as a
// table and written to the BENCH_dse.json artifact.
func runDSE(w io.Writer, p dseParams) error {
	a := arch.Exynos2100Like()
	base, err := baseOptions(p.baseCfg)
	if err != nil {
		return err
	}
	names := tableModels(p.models)

	rep := dseReport{Seed: p.seed, Jobs: p.jobs}
	t0 := time.Now()
	for _, name := range names {
		m, err := models.ByName(name)
		if err != nil {
			return err
		}
		sp := p.params
		sp.Seed = p.seed
		mt0 := time.Now()
		r, err := dse.Explore(nil, m.Build(), a, base, sp)
		if err != nil {
			return fmt.Errorf("dse %s: %w", name, err)
		}
		mm, bb, ss := r.Best.Overrides()
		row := dseRow{
			Model:             r.Model,
			BaselineCycles:    r.BaselineCycles,
			BestCycles:        r.BestCycles,
			ImprovementPct:    r.ImprovementPct,
			Points:            r.Points,
			Revisits:          r.Revisits,
			Infeasible:        r.Infeasible,
			CacheHits:         r.CacheHits,
			CacheMisses:       r.CacheMisses,
			BestFallback:      r.BestFallback,
			EngineMatch:       r.EngineMatch,
			MethodOverrides:   mm,
			BoundaryOverrides: bb,
			ScaleOverrides:    ss,
			WallClockMS:       float64(time.Since(mt0).Microseconds()) / 1000,
		}
		if total := r.CacheHits + r.CacheMisses; total > 0 {
			row.CacheHitRate = float64(r.CacheHits) / float64(total)
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.WallClockMS = float64(time.Since(t0).Microseconds()) / 1000

	printDSE(w, rep)
	f, err := os.Create(p.json)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "report written to %s\n", p.json)
	return nil
}

// baseOptions maps the -dse-base flag to the heuristic configuration
// the search must beat.
func baseOptions(name string) (core.Options, error) {
	switch name {
	case "", "stratum":
		return core.Stratum(), nil
	case "halo":
		return core.Halo(), nil
	case "base":
		return core.Base(), nil
	default:
		return core.Options{}, fmt.Errorf("unknown -dse-base %q (base, halo, stratum)", name)
	}
}

// tableModels resolves the -dse-models flag: a comma-separated list,
// or all Table 2 models when empty.
func tableModels(spec string) []string {
	if spec == "" {
		var names []string
		for _, m := range models.All() {
			names = append(names, m.Name)
		}
		return names
	}
	var names []string
	for _, s := range strings.Split(spec, ",") {
		if s = strings.TrimSpace(s); s != "" {
			names = append(names, s)
		}
	}
	return names
}

// printDSE renders the exploration summary table.
func printDSE(w io.Writer, rep dseReport) {
	fmt.Fprintf(w, "DSE: best-found vs h1-h8 heuristic baseline (seed %d, -j %d)\n", rep.Seed, rep.Jobs)
	fmt.Fprintf(w, "%-17s %12s %12s %7s %7s %6s %6s %9s %-9s %s\n",
		"Model", "base(cyc)", "best(cyc)", "gain%", "points", "revis", "hit%", "wall(ms)", "fallback", "overrides(m/b/s)")
	for _, r := range rep.Rows {
		match := ""
		if !r.EngineMatch {
			match = "  ENGINE MISMATCH"
		}
		fmt.Fprintf(w, "%-17s %12.0f %12.0f %7.2f %7d %6d %5.1f%% %9.1f %-9s %d/%d/%d%s\n",
			r.Model, r.BaselineCycles, r.BestCycles, r.ImprovementPct,
			r.Points, r.Revisits, 100*r.CacheHitRate, r.WallClockMS, r.BestFallback,
			r.MethodOverrides, r.BoundaryOverrides, r.ScaleOverrides, match)
	}
}

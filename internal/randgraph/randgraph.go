// Package randgraph generates random, valid layer graphs over the full
// operator set. The integration tests compile these under every
// configuration and validate the results bit-exactly against the
// reference executor — a fuzzing harness for the compiler's region
// arithmetic.
package randgraph

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/tensor"
)

// Params bounds the generated graph.
type Params struct {
	// MaxLayers bounds the number of generated layers (default 12).
	MaxLayers int
	// MaxHW bounds the input spatial extent (default 48, min 16).
	MaxHW int
	// MaxC bounds channel widths (default 32).
	MaxC int
	// DType is the element type (default Int8).
	DType tensor.DType
}

func (p *Params) defaults() {
	if p.MaxLayers == 0 {
		p.MaxLayers = 12
	}
	if p.MaxHW == 0 {
		p.MaxHW = 48
	}
	if p.MaxC == 0 {
		p.MaxC = 32
	}
}

// New generates a random graph from seed. The same seed always yields
// the same graph.
func New(seed int64, p Params) *graph.Graph {
	p.defaults()
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(fmt.Sprintf("rand%d", seed), p.DType)

	h := 16 + rng.Intn(p.MaxHW-15)
	w := 16 + rng.Intn(p.MaxHW-15)
	c := 1 + rng.Intn(p.MaxC)
	cur := g.Input("input", tensor.NewShape(h, w, c))

	// live holds layers whose outputs are still available for use as
	// secondary inputs (same shape required for Add).
	var live []graph.LayerID
	live = append(live, cur)

	n := 3 + rng.Intn(p.MaxLayers-2)
	for i := 0; i < n; i++ {
		cur = addRandomLayer(g, rng, cur, live, i, p)
		live = append(live, cur)
	}
	return g
}

// addRandomLayer appends one random layer consuming cur (and possibly
// an older same-shape layer).
func addRandomLayer(g *graph.Graph, rng *rand.Rand, cur graph.LayerID, live []graph.LayerID, i int, p Params) graph.LayerID {
	name := fmt.Sprintf("l%d", i)
	s := g.Layer(cur).OutShape

	// Candidate ops weighted toward convolutions.
	type gen func() (ops.Op, []graph.LayerID, bool)
	k := 1 + 2*rng.Intn(2) // 1 or 3
	stride := 1
	if rng.Intn(4) == 0 && s.H >= 8 && s.W >= 8 {
		stride = 2
	}
	pad := ops.SamePad(s, k, k, stride, stride, 1, 1)
	outC := (1 + rng.Intn(p.MaxC/4)) * 4

	gens := []gen{
		func() (ops.Op, []graph.LayerID, bool) {
			return ops.NewConv2D(k, k, stride, stride, outC, pad), []graph.LayerID{cur}, true
		},
		func() (ops.Op, []graph.LayerID, bool) {
			return ops.NewConv2D(k, k, stride, stride, outC, pad), []graph.LayerID{cur}, true
		},
		func() (ops.Op, []graph.LayerID, bool) {
			return ops.NewDepthwiseConv2D(k, k, stride, stride, pad), []graph.LayerID{cur}, true
		},
		func() (ops.Op, []graph.LayerID, bool) {
			fs := []ops.ActFunc{ops.ReLU, ops.ReLU6, ops.Sigmoid, ops.HSwish, ops.TanH}
			return ops.Activation{Func: fs[rng.Intn(len(fs))]}, []graph.LayerID{cur}, true
		},
		func() (ops.Op, []graph.LayerID, bool) {
			if s.H < 4 || s.W < 4 {
				return nil, nil, false
			}
			return ops.MaxPool2D{KH: 2, KW: 2, StrideH: 2, StrideW: 2}, []graph.LayerID{cur}, true
		},
		func() (ops.Op, []graph.LayerID, bool) {
			if s.H < 4 || s.W < 4 {
				return nil, nil, false
			}
			return ops.AvgPool2D{KH: 3, KW: 3, StrideH: 1, StrideW: 1,
				Pad: ops.SamePad(s, 3, 3, 1, 1, 1, 1)}, []graph.LayerID{cur}, true
		},
		func() (ops.Op, []graph.LayerID, bool) {
			// Residual add with an older same-shape layer.
			for _, cand := range live {
				if cand != cur && g.Layer(cand).OutShape == s {
					return ops.Add{Arity: 2}, []graph.LayerID{cand, cur}, true
				}
			}
			return nil, nil, false
		},
		func() (ops.Op, []graph.LayerID, bool) {
			// Concat with an older spatially matching layer.
			for _, cand := range live {
				cs := g.Layer(cand).OutShape
				if cand != cur && cs.H == s.H && cs.W == s.W && cs.C+s.C <= 2*p.MaxC {
					return ops.Concat{Arity: 2}, []graph.LayerID{cand, cur}, true
				}
			}
			return nil, nil, false
		},
		func() (ops.Op, []graph.LayerID, bool) {
			if s.H > p.MaxHW/2 || s.W > p.MaxHW/2 {
				return nil, nil, false
			}
			mode := ops.Nearest
			if rng.Intn(2) == 0 {
				mode = ops.Bilinear
			}
			return ops.Resize{ScaleH: 2, ScaleW: 2, Mode: mode}, []graph.LayerID{cur}, true
		},
		func() (ops.Op, []graph.LayerID, bool) {
			if s.H < 6 || s.W < 6 {
				return nil, nil, false
			}
			return ops.Crop{Top: 1, Bottom: 1, Left: 1, Right: 1}, []graph.LayerID{cur}, true
		},
		func() (ops.Op, []graph.LayerID, bool) {
			if s.H < 4 || s.W < 4 {
				return nil, nil, false
			}
			return ops.TransposeConv2D{KH: 2, KW: 2, StrideH: 2, StrideW: 2, OutC: outC}, []graph.LayerID{cur}, true
		},
		func() (ops.Op, []graph.LayerID, bool) {
			// Grouped convolution: groups dividing both channel counts.
			if s.C%4 != 0 {
				return nil, nil, false
			}
			oc := ((1 + rng.Intn(p.MaxC/4)) * 4)
			return ops.Conv2D{KH: k, KW: k, StrideH: 1, StrideW: 1, DilH: 1, DilW: 1,
				Pad: ops.SamePad(s, k, k, 1, 1, 1, 1), OutC: oc, Groups: 4}, []graph.LayerID{cur}, true
		},
		func() (ops.Op, []graph.LayerID, bool) {
			if s.C < 4 {
				return nil, nil, false
			}
			from := rng.Intn(s.C / 2)
			to := from + 1 + rng.Intn(s.C-from-1)
			return ops.ChannelSlice{From: from, To: to}, []graph.LayerID{cur}, true
		},
		func() (ops.Op, []graph.LayerID, bool) {
			if s.C%2 != 0 || s.C < 4 {
				return nil, nil, false
			}
			return ops.ChannelShuffle{Groups: 2}, []graph.LayerID{cur}, true
		},
	}

	for tries := 0; tries < 20; tries++ {
		op, inputs, ok := gens[rng.Intn(len(gens))]()
		if !ok {
			continue
		}
		id, err := g.Add(name, op, inputs...)
		if err != nil {
			continue // geometry mismatch; try another op
		}
		return id
	}
	// Fallback: an activation always works.
	return g.MustAdd(name, ops.Activation{Func: ops.ReLU}, cur)
}

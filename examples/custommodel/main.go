// Custommodel: define a custom encoder-decoder network with skip
// connections, compile it under every configuration, and verify the
// compiled partitioning numerically against the reference executor.
package main

import (
	"fmt"
	"log"

	"repro/npu"
)

// buildSegNet defines a small U-shaped segmentation network: two
// encoder levels, a bottleneck, and a decoder with a skip connection.
func buildSegNet() *npu.Graph {
	g := npu.NewGraph("segnet", npu.Int8)
	in := g.Input("input", npu.NewShape(96, 96, 3))

	same := func(s npu.Shape, k int) npu.Padding { return npu.SamePad(s, k, k, 1, 1, 1, 1) }

	e1 := g.MustAdd("enc1", npu.NewConv2D(3, 3, 1, 1, 16, same(npu.NewShape(96, 96, 3), 3)), in)
	e1r := g.MustAdd("enc1_relu", npu.Activation{Func: npu.ReLU}, e1)
	p1 := g.MustAdd("pool1", npu.MaxPool2D{KH: 2, KW: 2, StrideH: 2, StrideW: 2}, e1r)

	e2 := g.MustAdd("enc2", npu.NewConv2D(3, 3, 1, 1, 32, same(npu.NewShape(48, 48, 16), 3)), p1)
	e2r := g.MustAdd("enc2_relu", npu.Activation{Func: npu.ReLU}, e2)
	p2 := g.MustAdd("pool2", npu.MaxPool2D{KH: 2, KW: 2, StrideH: 2, StrideW: 2}, e2r)

	mid := g.MustAdd("mid", npu.NewConv2D(3, 3, 1, 1, 64, same(npu.NewShape(24, 24, 32), 3)), p2)
	midr := g.MustAdd("mid_relu", npu.Activation{Func: npu.ReLU}, mid)

	up1 := g.MustAdd("up1", npu.TransposeConv2D{KH: 2, KW: 2, StrideH: 2, StrideW: 2, OutC: 32}, midr)
	cat := g.MustAdd("skip", npu.Concat{Arity: 2}, up1, e2r)
	d1 := g.MustAdd("dec1", npu.NewConv2D(3, 3, 1, 1, 32, same(npu.NewShape(48, 48, 64), 3)), cat)
	d1r := g.MustAdd("dec1_relu", npu.Activation{Func: npu.ReLU}, d1)

	up2 := g.MustAdd("up2", npu.TransposeConv2D{KH: 2, KW: 2, StrideH: 2, StrideW: 2, OutC: 16}, d1r)
	logits := g.MustAdd("logits", npu.NewConv2D(1, 1, 1, 1, 4, npu.Padding{}), up2)
	g.MustAdd("softmax", npu.Softmax{}, logits)
	return g
}

func main() {
	g := buildSegNet()
	fmt.Printf("%s: %d layers, %.1f MMACs\n\n", g.Name, g.Len(), float64(g.TotalMACs())/1e6)

	a := npu.Exynos2100Like()
	for _, opt := range []npu.Options{npu.Base(), npu.Halo(), npu.Stratum()} {
		res, err := npu.Compile(g, a, opt)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := npu.Simulate(res, false)
		if err != nil {
			log.Fatal(err)
		}
		// Prove the compiled plan computes the right values: the
		// partitioned/tiled/strata executions must equal a whole-graph
		// reference bit for bit.
		if err := npu.Validate(g, res); err != nil {
			log.Fatalf("%s: validation failed: %v", opt.Name(), err)
		}
		fmt.Printf("%-9s %8.1f us   %3d barriers   validated ✓\n",
			opt.Name(), rep.Stats.LatencyMicros(a.ClockMHz), rep.Stats.Barriers)
	}
}

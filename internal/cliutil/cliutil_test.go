package cliutil

import (
	"testing"

	"repro/internal/partition"
)

func TestArch(t *testing.T) {
	a, err := Arch(1)
	if err != nil || a.NumCores() != 1 {
		t.Errorf("Arch(1) = %v, %v", a, err)
	}
	a, err = Arch(3)
	if err != nil || a.Name != "exynos2100-like-3core" {
		t.Errorf("Arch(3) = %v, %v", a, err)
	}
	a, err = Arch(6)
	if err != nil || a.NumCores() != 6 {
		t.Errorf("Arch(6) = %v, %v", a, err)
	}
	if _, err := Arch(0); err == nil {
		t.Error("Arch(0) accepted")
	}
	if _, err := Arch(-2); err == nil {
		t.Error("Arch(-2) accepted")
	}
}

func TestConfig(t *testing.T) {
	for _, name := range []string{"base", "halo", "stratum"} {
		if _, err := Config(name); err != nil {
			t.Errorf("Config(%q): %v", name, err)
		}
	}
	if _, err := Config("turbo"); err == nil {
		t.Error("unknown config accepted")
	}
	opt, _ := Config("stratum")
	if !opt.Stratum || !opt.HaloExchange {
		t.Error("stratum config incomplete")
	}
}

func TestMode(t *testing.T) {
	m, err := Mode("channel")
	if err != nil || m != partition.ForceChannel {
		t.Errorf("Mode(channel) = %v, %v", m, err)
	}
	if _, err := Mode("diagonal"); err == nil {
		t.Error("unknown mode accepted")
	}
}

package sim_test

import (
	. "repro/internal/sim"

	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/plan"
	"repro/internal/tensor"
)

// TestRetryStatsCountOnce is the DMA-retry accounting regression test:
// a dropped-and-reissued transfer must contribute its payload bytes to
// CoreStats exactly once, count exactly one retry, and report a LoadBusy
// interval spanning the whole chain (setup, first attempt, backoff,
// retry) once — never the pre-drop segment plus the full chain again.
// The program mirrors TestRetriedTransferUsesFreshRate so every number
// is exact.
func TestRetryStatsCountOnce(t *testing.T) {
	sub, err := arch.Exynos2100Like().Subset([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	sub.BusBytesPerCycle = 14
	if sub.Cores[0].DMABytesPerCycle != 16 || sub.Cores[1].DMABytesPerCycle != 12 {
		t.Skipf("arch DMA caps changed (%v, %v); rebuild the arithmetic",
			sub.Cores[0].DMABytesPerCycle, sub.Cores[1].DMABytesPerCycle)
	}

	g := graph.New("retry-stats", tensor.Int8)
	g.Input("in", tensor.NewShape(8, 8, 1))
	prog := &plan.Program{
		Arch:  sub,
		Graph: g,
		Cores: [][]plan.Instr{
			{{Op: plan.LoadInput, Layer: 0, Tile: 0, Bytes: 7000, BarrierID: -1, Note: "victim"}},
			{{Op: plan.LoadInput, Layer: 0, Tile: 0, Bytes: 7700, BarrierID: -1, Note: "peer"}},
		},
	}

	// Seed search: drop exactly the victim's first attempt (global node
	// ids: victim = 0, peer = 1).
	var fp *fault.Plan
	for seed := uint64(0); ; seed++ {
		p := &fault.Plan{Seed: seed, DropRate: 0.5}
		if p.Drops(0, 0) && !p.Drops(0, 1) && !p.Drops(1, 0) {
			fp = p
			break
		}
	}

	res, err := runBoth(t, sub, []Placement{
		{Program: prog, Cores: []int{0, 1}},
	}, Config{CollectTrace: true, Faults: fp})
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	var victim *Event
	for i := range res.Trace {
		if res.Trace[i].Note == "victim" {
			victim = &res.Trace[i]
		}
	}
	if victim == nil {
		t.Fatal("victim transfer missing from trace")
	}
	if victim.Retries != 1 {
		t.Fatalf("victim retries = %d, want 1 (seed search broken?)", victim.Retries)
	}

	v, p := res.Stats.PerCore[0], res.Stats.PerCore[1]
	// Payload bytes count once per instruction: a double-counting bug
	// would report 14000 here (7000 delivered twice over the bus).
	if v.BytesLoaded != 7000 {
		t.Errorf("victim core BytesLoaded = %d, want 7000 (payload counted once)", v.BytesLoaded)
	}
	if p.BytesLoaded != 7700 {
		t.Errorf("peer core BytesLoaded = %d, want 7700", p.BytesLoaded)
	}
	if v.Retries != 1 || p.Retries != 0 {
		t.Errorf("retries = %d/%d, want 1/0", v.Retries, p.Retries)
	}
	// LoadBusy is the single chain interval from the trace event, not
	// pre-drop busy plus the chain again.
	if want := victim.End - victim.Start; v.LoadBusy != want {
		t.Errorf("victim core LoadBusy = %v, want %v (chain counted once)", v.LoadBusy, want)
	}
}

// TestDropsPreservePayloadTotals checks the same invariant at model
// scale: injecting DMA drops re-transmits bytes over the bus but must
// not inflate the payload counters — BytesLoaded, BytesStored, and MACs
// match the fault-free run exactly, while retries and latency grow.
func TestDropsPreservePayloadTotals(t *testing.T) {
	a := arch.Exynos2100Like()
	res, err := core.Compile(models.TinyCNN(), a, core.Halo())
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Run(res.Program, Config{})
	if err != nil {
		t.Fatal(err)
	}
	faulted, err := Run(res.Program, Config{Faults: &fault.Plan{Seed: 7, DropRate: 0.05}})
	if err != nil {
		t.Fatal(err)
	}

	var retries int
	for c := range clean.Stats.PerCore {
		cs, fs := clean.Stats.PerCore[c], faulted.Stats.PerCore[c]
		if cs.BytesLoaded != fs.BytesLoaded || cs.BytesStored != fs.BytesStored || cs.MACs != fs.MACs {
			t.Errorf("core %d payload drifted under drops: loaded %d->%d, stored %d->%d, MACs %d->%d",
				c, cs.BytesLoaded, fs.BytesLoaded, cs.BytesStored, fs.BytesStored, cs.MACs, fs.MACs)
		}
		retries += fs.Retries
	}
	if retries == 0 {
		t.Fatal("drop plan injected no retries; the test exercises nothing")
	}
	if faulted.Stats.TotalCycles <= clean.Stats.TotalCycles {
		t.Errorf("faulted run (%v cycles) not slower than clean (%v) despite %d retries",
			faulted.Stats.TotalCycles, clean.Stats.TotalCycles, retries)
	}
}

package sim

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/arch"
	"repro/internal/cost"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/plan"
)

// This file preserves the original step-scanning simulator verbatim as
// the reference implementation. The event-driven engine (engine.go)
// must reproduce it bit for bit — cycle counts, per-core stats, traces,
// and fault behavior — which the equivalence tests enforce by
// DeepEqual-ing both engines across every benchmark model and fault
// plan. Keep this code boring and unoptimized: it is the oracle.

// node is the runtime state of one instruction (reference engine).
type node struct {
	in         plan.Instr
	deps       int // unsatisfied dependency count
	done       bool
	started    bool
	start      float64
	remaining  float64 // bytes left (DMA) — unused for compute/barrier
	setupUntil float64 // DMA descriptor setup completes at this time
	finish     float64 // scheduled completion (compute/barrier)
	attempt    int     // DMA re-issues so far (fault injection)
	flipped    bool    // delivered corrupted bytes (fault injection)
}

type engineState struct {
	queue []int // global node ids in program order
	pos   int   // next to issue
	busy  int   // active node id, -1 if none
}

// barrier tracks a rendezvous (reference engine).
type barrier struct {
	arrived  int
	arrival  []float64 // per core arrival time, NaN until arrived
	released bool
	finish   float64
	nodes    []int // node ids, per core
}

// RunReference simulates p with the retained pre-event-engine
// implementation. Production callers should use Run; this entry point
// exists for golden equivalence tests and A/B benchmarking.
func RunReference(p *plan.Program, cfg Config) (*Result, error) {
	cores := make([]int, p.Arch.NumCores())
	for i := range cores {
		cores[i] = i
	}
	return RunConcurrentReference(p.Arch, []Placement{{Program: p, Cores: cores}}, cfg)
}

// RunConcurrentReference is the reference-engine counterpart of
// RunConcurrent. See RunReference.
func RunConcurrentReference(a *arch.Arch, placements []Placement, cfg Config) (*Result, error) {
	model := cost.New(a)
	ncores := a.NumCores()

	fs, err := newFaultState(cfg.Faults, ncores)
	if err != nil {
		return nil, err
	}
	speedOf := func(c int) float64 {
		if fs == nil {
			return 1
		}
		return fs.speed[c]
	}

	// Validate placements: disjoint cores, in range, matching widths.
	owner := make([]int, ncores)
	for i := range owner {
		owner[i] = -1
	}
	for pi, pl := range placements {
		if len(pl.Cores) != len(pl.Program.Cores) {
			return nil, fmt.Errorf("sim: placement %d maps %d cores for a %d-core program",
				pi, len(pl.Cores), len(pl.Program.Cores))
		}
		for _, c := range pl.Cores {
			if c < 0 || c >= ncores {
				return nil, fmt.Errorf("sim: placement %d core %d out of range", pi, c)
			}
			if owner[c] >= 0 {
				return nil, fmt.Errorf("sim: core %d claimed by placements %d and %d", c, owner[c], pi)
			}
			owner[c] = pi
		}
	}

	// Global node numbering across placements and their cores.
	type streamKey struct{ pi, localCore int }
	base := map[streamKey]int{}
	total := 0
	for pi, pl := range placements {
		for lc := range pl.Program.Cores {
			base[streamKey{pi, lc}] = total
			total += len(pl.Program.Cores[lc])
		}
	}
	nodes := make([]node, total)
	dependents := make([][]int32, total)
	coreOf := make([]int, total)  // global core
	progOf := make([]int, total)  // placement index
	indexOf := make([]int, total) // position within the core-local stream

	engines := make([][]engineState, ncores)
	for c := 0; c < ncores; c++ {
		engines[c] = make([]engineState, 4)
		for e := range engines[c] {
			engines[c][e].busy = -1
		}
	}

	barriers := make([][]*barrier, len(placements))
	for pi, pl := range placements {
		nlocal := len(pl.Cores)
		id := func(r plan.Ref) int { return base[streamKey{pi, r.Core}] + r.Index }
		for lc, stream := range pl.Program.Cores {
			gcore := pl.Cores[lc]
			for i, in := range stream {
				n := base[streamKey{pi, lc}] + i
				nodes[n] = node{in: in, deps: len(in.Deps)}
				coreOf[n] = gcore
				progOf[n] = pi
				indexOf[n] = i
				for _, d := range in.Deps {
					dependents[id(d)] = append(dependents[id(d)], int32(n))
				}
				engines[gcore][in.Op.Engine()].queue = append(engines[gcore][in.Op.Engine()].queue, n)
			}
		}
		barriers[pi] = make([]*barrier, pl.Program.NumBarriers)
		for i := range barriers[pi] {
			barriers[pi][i] = &barrier{arrival: make([]float64, nlocal), nodes: make([]int, nlocal)}
			for c := range barriers[pi][i].arrival {
				barriers[pi][i].arrival[c] = math.NaN()
				barriers[pi][i].nodes[c] = -1
			}
		}
	}

	// Per-placement layer accounting for checkpoint recovery: how many
	// instructions each layer owes vs. has completed, and whether any
	// of them publishes the layer's output to global memory.
	var layerDone, layerTotal [][]int
	var layerStore [][]bool
	pending := make([]int, ncores)
	if fs != nil {
		layerDone = make([][]int, len(placements))
		layerTotal = make([][]int, len(placements))
		layerStore = make([][]bool, len(placements))
		for pi, pl := range placements {
			nl := pl.Program.Graph.Len()
			layerDone[pi] = make([]int, nl)
			layerTotal[pi] = make([]int, nl)
			layerStore[pi] = make([]bool, nl)
			for _, stream := range pl.Program.Cores {
				for _, in := range stream {
					layerTotal[pi][in.Layer]++
					// Only plan.Store reaches global memory; halo stores land
					// in a peer's SPM and die with it.
					if in.Op == plan.Store {
						layerStore[pi][in.Layer] = true
					}
				}
			}
		}
		for nid := 0; nid < total; nid++ {
			pending[coreOf[nid]]++
		}
	}

	// Watchdog heartbeat (see Config.WatchdogCycles): armed only when
	// faults are injected.
	wdH := 0.0
	if cfg.WatchdogCycles > 0 && fs != nil {
		wdH = cfg.WatchdogCycles
	}
	nextBeat := wdH

	// Stratum-boundary checksum accounting for silent-corruption
	// detection (FlipRate > 0 only). Programs without strata checksum
	// at every layer boundary instead.
	flipOn := fs != nil && fs.plan.FlipRate > 0
	var layerStr [][]int32
	var strLeft, strFlips [][]int32
	var corrupts []Corruption
	if flipOn {
		layerStr = make([][]int32, len(placements))
		strLeft = make([][]int32, len(placements))
		strFlips = make([][]int32, len(placements))
		for pi, pl := range placements {
			nl := pl.Program.Graph.Len()
			ls := make([]int32, nl)
			for i := range ls {
				ls[i] = -1
			}
			ns := len(pl.Program.Strata)
			if ns == 0 {
				ns = nl
				for l := 0; l < nl; l++ {
					ls[l] = int32(l)
				}
			} else {
				for si, s := range pl.Program.Strata {
					for _, id := range s {
						ls[id] = int32(si)
					}
				}
			}
			layerStr[pi] = ls
			strLeft[pi] = make([]int32, ns)
			strFlips[pi] = make([]int32, ns)
		}
		for nid := 0; nid < total; nid++ {
			pi := progOf[nid]
			if si := layerStr[pi][nodes[nid].in.Layer]; si >= 0 {
				strLeft[pi][si]++
			}
		}
	}

	// SPM admission state, mirroring the event engine (spmcheck.go):
	// owner bytes per node, reader counts filtered to genuine data
	// reads, and per-core live totals.
	spmOn := !cfg.NoSPMCheck
	var spmBuf []int64
	var spmReaders []int32
	var spmLive []int64
	if spmOn {
		spmBuf = make([]int64, total)
		spmReaders = make([]int32, total)
		spmLive = make([]int64, ncores)
		for n := range nodes {
			spmBuf[n] = spmOwnedBytes(&nodes[n].in)
		}
		for d := range nodes {
			if spmBuf[d] <= 0 {
				continue
			}
			for _, n := range dependents[d] {
				if spmReads(nodes[d].in.Op, nodes[n].in.Op) {
					spmReaders[d]++
				}
			}
		}
	}

	totalBarriers := 0
	for _, bs := range barriers {
		totalBarriers += len(bs)
	}
	stats := Stats{
		PerCore:       make([]CoreStats, ncores),
		Barriers:      totalBarriers,
		ProgramCycles: make([]float64, len(placements)),
	}
	var trace []Event
	busyIntervals := make([][][2]float64, ncores)

	// localIndex maps a global core back to its placement-local index.
	localIndex := make([]int, ncores)
	for i := range localIndex {
		localIndex[i] = -1
	}
	for _, pl := range placements {
		for lc, c := range pl.Cores {
			localIndex[c] = lc
		}
	}

	now := 0.0
	completed := 0

	finishNode := func(nid int, t float64) {
		n := &nodes[nid]
		n.done = true
		completed++
		c := coreOf[nid]
		st := &stats.PerCore[c]
		dur := t - n.start
		switch n.in.Op.Engine() {
		case plan.EngineCompute:
			st.ComputeBusy += dur
			st.MACs += n.in.MACs
		case plan.EngineLoad:
			st.LoadBusy += dur
			st.BytesLoaded += n.in.Bytes
		case plan.EngineStore:
			st.StoreBusy += dur
			st.BytesStored += n.in.Bytes
		case plan.EngineSync:
			st.SyncWait += dur
		}
		if t > st.Finish {
			st.Finish = t
		}
		if t > stats.ProgramCycles[progOf[nid]] {
			stats.ProgramCycles[progOf[nid]] = t
		}
		if fs != nil {
			layerDone[progOf[nid]][n.in.Layer]++
			pending[c]--
		}
		if flipOn {
			pi := progOf[nid]
			if si := layerStr[pi][n.in.Layer]; si >= 0 {
				if n.flipped {
					strFlips[pi][si]++
				}
				strLeft[pi][si]--
				// Stratum complete: its boundary checksum catches any
				// corrupted transfer inside it here.
				if strLeft[pi][si] == 0 && strFlips[pi][si] > 0 {
					corrupts = append(corrupts, Corruption{
						Placement: pi, Stratum: int(si),
						DetectedAtCycle: t, Transfers: int(strFlips[pi][si]),
					})
				}
			}
		}
		busyIntervals[c] = append(busyIntervals[c], [2]float64{n.start, t})
		if cfg.CollectTrace {
			trace = append(trace, Event{
				Core: c, Index: indexOf[nid], Op: n.in.Op, Layer: n.in.Layer, Tile: n.in.Tile,
				Start: n.start, End: t, Retries: n.attempt, Note: n.in.Note,
			})
		}
		if spmOn {
			// The node's own buffer dies now if no reader is outstanding;
			// its deps' buffers die if this was their last reader and the
			// owner already finished.
			if spmBuf[nid] > 0 && spmReaders[nid] == 0 {
				spmLive[c] -= spmBuf[nid]
				spmBuf[nid] = 0
			}
			for _, d := range n.in.Deps {
				dn := base[streamKey{progOf[nid], d.Core}] + d.Index
				if spmBuf[dn] > 0 && spmReads(nodes[dn].in.Op, n.in.Op) {
					spmReaders[dn]--
					if spmReaders[dn] == 0 && nodes[dn].done {
						spmLive[coreOf[dn]] -= spmBuf[dn]
						spmBuf[dn] = 0
					}
				}
			}
		}
		es := &engines[c][n.in.Op.Engine()]
		if es.busy == nid {
			es.busy = -1
		}
		for _, d := range dependents[nid] {
			nodes[d].deps--
		}
	}

	// issueAll starts every instruction that can start at time now.
	issueAll := func() {
		progress := true
		for progress {
			progress = false
			for c := 0; c < ncores; c++ {
				if fs != nil && fs.hung[c] {
					continue // silently stalled: nothing issues until the resume
				}
				for e := range engines[c] {
					es := &engines[c][e]
					if es.busy >= 0 || es.pos >= len(es.queue) {
						continue
					}
					nid := es.queue[es.pos]
					n := &nodes[nid]
					if n.deps > 0 {
						continue
					}
					// Issue.
					es.pos++
					n.started = true
					n.start = now
					if spmOn {
						if b := spmBuf[nid]; b > 0 {
							spmLive[c] += b
						}
					}
					pi := progOf[nid]
					switch n.in.Op.Engine() {
					case plan.EngineCompute:
						dt := placements[pi].Program.Graph.Layer(n.in.Layer).DType
						n.finish = now + float64(model.ComputeCycles(c, n.in.MACs, dt))/speedOf(c)
						es.busy = nid
					case plan.EngineLoad, plan.EngineStore:
						n.remaining = float64(n.in.Bytes)
						n.setupUntil = now + float64(a.DMASetupCycles)
						es.busy = nid
					case plan.EngineSync:
						b := barriers[pi][n.in.BarrierID]
						lc := localIndex[c]
						b.arrival[lc] = now
						b.nodes[lc] = nid
						b.arrived++
						es.busy = nid
						if b.arrived == len(placements[pi].Cores) {
							maxArr := 0.0
							for _, arr := range b.arrival {
								if arr > maxArr {
									maxArr = arr
								}
							}
							b.finish = maxArr + float64(a.SyncCost(len(placements[pi].Cores))) +
								jitter(n.in.BarrierID, a.SyncJitterCycles)
							b.released = true
						}
					}
					progress = true
				}
			}
		}
	}

	// activeTransfers gathers in-flight DMA channels for bandwidth
	// allocation.
	type channel struct {
		nid int
		cap float64
	}
	rates := make([]float64, total)

	var pendingSetup []int
	allocate := func() []channel {
		var chans []channel  // bus-sharing DMA channels
		var direct []channel // dedicated-interconnect halo channels
		pendingSetup = pendingSetup[:0]
		for c := 0; c < ncores; c++ {
			for _, e := range []plan.Engine{plan.EngineLoad, plan.EngineStore} {
				nid := engines[c][e].busy
				if nid < 0 {
					continue
				}
				if nodes[nid].setupUntil > now+eps {
					pendingSetup = append(pendingSetup, nid)
					continue
				}
				ch := channel{nid: nid, cap: a.Cores[c].DMABytesPerCycle * speedOf(c)}
				op := nodes[nid].in.Op
				if a.DirectHaloInterconnect && (op == plan.StoreHalo || op == plan.LoadHalo) {
					direct = append(direct, ch)
					continue
				}
				chans = append(chans, ch)
			}
		}
		// Dedicated link: full engine rate, no bus contention.
		for _, ch := range direct {
			rates[ch.nid] = ch.cap
		}
		// Max-min fair water-filling under the bus ceiling.
		sort.Slice(chans, func(i, j int) bool { return chans[i].cap < chans[j].cap })
		remainingBW := a.BusBytesPerCycle
		for i, ch := range chans {
			share := remainingBW / float64(len(chans)-i)
			r := math.Min(ch.cap, share)
			rates[ch.nid] = r
			remainingBW -= r
		}
		return append(chans, direct...)
	}

	// partialStats snapshots the statistics accumulated so far, with
	// idle time recomputed up to the current cycle.
	partialStats := func() Stats {
		partial := stats
		partial.PerCore = append([]CoreStats(nil), stats.PerCore...)
		partial.ProgramCycles = append([]float64(nil), stats.ProgramCycles...)
		partial.TotalCycles = now
		for c := 0; c < ncores; c++ {
			idle := now - unionLength(busyIntervals[c])
			if idle < 0 {
				idle = 0
			}
			partial.PerCore[c].Idle = idle
		}
		return partial
	}

	checkpointOf := func(pi int) []graph.LayerID {
		if pi < 0 {
			return nil
		}
		return checkpoint(placements[pi].Program, layerDone[pi], layerTotal[pi], layerStore[pi])
	}

	// failCore snapshots the run state into a typed CoreFailure.
	failCore := func(kind FailureKind, core int) *CoreFailure {
		pi := owner[core]
		return &CoreFailure{
			Kind: kind, Core: core, Placement: pi, AtCycle: now,
			Completed: checkpointOf(pi), Partial: partialStats(),
		}
	}

	// coreStalled mirrors the event engine's watchdog evidence scan:
	// a busy compute engine that will never finish, a post-setup DMA
	// moving zero bytes, or an idle engine whose issuable queue head
	// was skipped by issue. None of these occur on a healthy core
	// after issueAll has run.
	coreStalled := func(c int) bool {
		for e := range engines[c] {
			es := &engines[c][e]
			if nid := es.busy; nid >= 0 {
				n := &nodes[nid]
				switch plan.Engine(e) {
				case plan.EngineCompute:
					if math.IsInf(n.finish, 1) {
						return true
					}
				case plan.EngineLoad, plan.EngineStore:
					if n.setupUntil <= now+eps && speedOf(c) == 0 {
						return true
					}
				}
				continue
			}
			if es.pos < len(es.queue) && nodes[es.queue[es.pos]].deps == 0 {
				return true
			}
		}
		return false
	}

	scanStalled := func() []int {
		var culprits []int
		for c := 0; c < ncores; c++ {
			if pending[c] <= 0 {
				continue
			}
			if coreStalled(c) {
				culprits = append(culprits, c)
			}
		}
		return culprits
	}

	hungPendingList := func() []int {
		if fs == nil {
			return nil
		}
		var out []int
		for c := 0; c < ncores; c++ {
			if fs.hung[c] && pending[c] > 0 {
				out = append(out, c)
			}
		}
		return out
	}

	for step := 0; completed < total; step++ {
		if err := canceled(cfg.Ctx, step, now, completed, total); err != nil {
			return nil, err
		}
		// Fault events due now fire before new work issues: a throttle
		// or silent slowdown rescales the core's in-flight compute; a
		// hang freezes the core entirely; a death fails the run if the
		// core still owes instructions (and is inert otherwise).
		if fs != nil {
			for _, ev := range fs.fire(now) {
				switch ev.kind {
				case fault.KindDeath:
					if owner[ev.core] >= 0 && pending[ev.core] > 0 {
						return nil, failCore(FailCoreDeath, ev.core)
					}
				case fault.KindHang:
					// Freeze in-flight compute: bank the unit-speed work
					// left and park the node until the resume (if any).
					// In-flight DMA freezes through allocate() (zero
					// capacity, zero water-filled rate), and issueAll
					// skips the core while it is hung.
					if nid := engines[ev.core][plan.EngineCompute].busy; nid >= 0 {
						n := &nodes[nid]
						if n.finish > now && ev.oldSpeed > 0 {
							n.remaining = (n.finish - now) * ev.oldSpeed
							n.finish = math.Inf(1)
						}
					}
				case fault.KindResume:
					if nid := engines[ev.core][plan.EngineCompute].busy; nid >= 0 {
						n := &nodes[nid]
						if math.IsInf(n.finish, 1) && ev.newSpeed > 0 {
							n.finish = now + n.remaining/ev.newSpeed
						}
					}
				default: // announced throttle or silent slowdown
					if nid := engines[ev.core][plan.EngineCompute].busy; nid >= 0 {
						n := &nodes[nid]
						if n.finish > now && ev.oldSpeed > 0 && ev.newSpeed > 0 {
							n.finish = now + (n.finish-now)*ev.oldSpeed/ev.newSpeed
						}
					}
				}
			}
		}

		issueAll()

		if spmOn {
			for c := 0; c < ncores; c++ {
				if spmLive[c] <= a.Cores[c].SPMBytes {
					continue
				}
				serr := &SPMOverflowError{
					Core: c, Cycle: now,
					LiveBytes: spmLive[c], CapacityBytes: a.Cores[c].SPMBytes,
				}
				for n := 0; n < total; n++ {
					if coreOf[n] != c || spmBuf[n] <= 0 || !nodes[n].started {
						continue
					}
					serr.Buffers = append(serr.Buffers, SPMBuffer{
						Core: c, Index: indexOf[n],
						Op: nodes[n].in.Op, Bytes: spmBuf[n], Note: nodes[n].in.Note,
					})
				}
				return nil, serr
			}
		}

		// Watchdog beat: after issue (so an idle engine with an
		// issuable head is genuine stall evidence).
		beatBarren := false
		if wdH > 0 && now >= nextBeat-eps {
			if culprits := scanStalled(); len(culprits) > 0 {
				pi := owner[culprits[0]]
				return nil, &HangDetected{
					Cores: culprits, Placement: pi, AtCycle: now,
					Completed: checkpointOf(pi), Partial: partialStats(),
				}
			}
			beatBarren = true
			for nextBeat <= now+eps {
				nextBeat += wdH
			}
		}

		chans := allocate()

		// Earliest next completion.
		next := math.Inf(1)
		for _, ch := range chans {
			if r := rates[ch.nid]; r > 0 {
				if t := now + nodes[ch.nid].remaining/r; t < next {
					next = t
				}
			}
		}
		for _, nid := range pendingSetup {
			if t := nodes[nid].setupUntil; t < next {
				next = t
			}
		}
		for c := 0; c < ncores; c++ {
			if nid := engines[c][plan.EngineCompute].busy; nid >= 0 {
				if nodes[nid].finish < next {
					next = nodes[nid].finish
				}
			}
		}
		for _, bs := range barriers {
			for _, b := range bs {
				if b.released && !nodes[b.nodes[0]].done && b.finish < next {
					next = b.finish
				}
			}
		}
		if fs != nil {
			if t := fs.next(); t > now && t < next {
				next = t
			}
		}
		if math.IsInf(next, 1) {
			// Quiescent. With the watchdog on, give it one more beat to
			// name the culprits — unless the beat just ran and found
			// none, in which case this is a genuine deadlock.
			if wdH <= 0 || beatBarren {
				return nil, deadlockError(now, completed, total, hungPendingList())
			}
		}
		if wdH > 0 && nextBeat < next {
			next = nextBeat
		}
		if next < now {
			next = now
		}

		// Advance time, draining transfers.
		dt := next - now
		for _, ch := range chans {
			nodes[ch.nid].remaining -= rates[ch.nid] * dt
		}
		now = next

		// Complete everything due.
		for _, ch := range chans {
			n := &nodes[ch.nid]
			if n.remaining > eps || n.done {
				continue
			}
			// An injected drop fails the transfer after it moved its
			// bytes: the bandwidth was spent, the data must be re-sent
			// after an exponential backoff.
			if fs != nil && fs.plan.Drops(ch.nid, n.attempt) {
				n.attempt++
				stats.PerCore[coreOf[ch.nid]].Retries++
				if n.attempt > fs.maxRetries {
					return nil, failCore(FailDMAExhausted, coreOf[ch.nid])
				}
				n.remaining = float64(n.in.Bytes)
				n.setupUntil = now + fault.BackoffCycles(a.DMASetupCycles, n.attempt)
				continue
			}
			// A silent bit-flip corrupts the delivered bytes without any
			// signal; the stratum-boundary checksum catches it later.
			if flipOn && fs.plan.Flips(ch.nid, n.attempt) {
				n.flipped = true
			}
			finishNode(ch.nid, now)
		}
		for c := 0; c < ncores; c++ {
			if nid := engines[c][plan.EngineCompute].busy; nid >= 0 {
				if nodes[nid].finish <= now+eps && !nodes[nid].done {
					finishNode(nid, now)
				}
			}
		}
		for _, bs := range barriers {
			for _, b := range bs {
				if b.released && b.finish <= now+eps {
					for _, nid := range b.nodes {
						if nid >= 0 && !nodes[nid].done {
							finishNode(nid, now)
						}
					}
				}
			}
		}
	}

	stats.TotalCycles = now
	for c := 0; c < ncores; c++ {
		stats.PerCore[c].Idle = stats.TotalCycles - unionLength(busyIntervals[c])
	}
	return &Result{Stats: stats, Trace: trace, Corruptions: corrupts}, nil
}
